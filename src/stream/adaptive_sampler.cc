#include "stream/adaptive_sampler.h"

namespace substream {

AdaptiveBernoulliSampler::AdaptiveBernoulliSampler(double initial_p,
                                                   std::size_t budget,
                                                   std::uint64_t seed)
    : rate_(initial_p), budget_(budget), rng_(seed) {
  SUBSTREAM_CHECK_MSG(initial_p > 0.0 && initial_p <= 1.0,
                      "sampling probability p=%f", initial_p);
  SUBSTREAM_CHECK(budget >= 1);
  kept_.reserve(budget + 1);
}

void AdaptiveBernoulliSampler::Update(item_t item) {
  ++seen_;
  if (rng_.NextBernoulli(rate_)) {
    kept_.push_back(item);
    if (kept_.size() > budget_) Rethin();
  }
}

void AdaptiveBernoulliSampler::Rethin() {
  // Halve the rate and thin the kept set by an independent fair coin per
  // element: the survivors form an exact Bernoulli(rate/2) sample of the
  // prefix, preserving the model every estimator in the library assumes.
  rate_ *= 0.5;
  ++decays_;
  std::size_t write = 0;
  for (std::size_t read = 0; read < kept_.size(); ++read) {
    if (rng_.NextBernoulli(0.5)) kept_[write++] = kept_[read];
  }
  kept_.resize(write);
}

std::vector<AdaptiveSample> AdaptiveBernoulliSampler::Sample() const {
  std::vector<AdaptiveSample> out;
  out.reserve(kept_.size());
  for (item_t item : kept_) {
    out.push_back(AdaptiveSample{item, rate_});
  }
  return out;
}

double HorvitzThompsonF1(const std::vector<AdaptiveSample>& sample) {
  double sum = 0.0;
  for (const AdaptiveSample& s : sample) {
    SUBSTREAM_CHECK(s.inclusion_probability > 0.0);
    sum += 1.0 / s.inclusion_probability;
  }
  return sum;
}

double HorvitzThompsonFrequency(const std::vector<AdaptiveSample>& sample,
                                item_t item) {
  double sum = 0.0;
  for (const AdaptiveSample& s : sample) {
    if (s.item == item) sum += 1.0 / s.inclusion_probability;
  }
  return sum;
}

}  // namespace substream
