#ifndef SUBSTREAM_PLAN_COMPILER_H_
#define SUBSTREAM_PLAN_COMPILER_H_

#include <optional>

#include "core/monitor.h"
#include "plan/plan.h"

/// \file compiler.h
/// Applies a solved GeometryPlan to a MonitorConfig: the bridge between
/// the core-free solver (plan/plan.h) and the Monitor construction path.
/// Monitor, ShardedMonitor and WindowedMonitor all resolve their config
/// through ResolveMonitorConfig(), so a fleet configured from one
/// {budget, targets} tuple lands on bit-identical geometry everywhere —
/// which is exactly the Merge precondition.

namespace substream {
namespace plan {

/// Resolves `config`: when `config.plan` is set, runs the solver and
/// compiles the resulting geometry into the explicit fields (clearing
/// `plan`); always canonicalizes the zero-defaulted F0 geometry fields
/// (0 -> KMV k 1024 / HLL precision 14) so configs that construct
/// identical estimators also compare equal. Idempotent.
MonitorConfig ResolveMonitorConfig(const MonitorConfig& config);

/// The 0 -> library-default canonicalization alone (also applied by
/// Monitor::Deserialize, which reconstructs the F0 fields from the decoded
/// F0 record instead of the wire header).
void CanonicalizeF0Geometry(MonitorConfig& config);

/// The solved plan for a config's spec, for introspection (examples and
/// benches print it); std::nullopt when the config carries no plan.
std::optional<GeometryPlan> PlanFor(const MonitorConfig& config);

}  // namespace plan
}  // namespace substream

#endif  // SUBSTREAM_PLAN_COMPILER_H_
