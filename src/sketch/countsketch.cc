#include "sketch/countsketch.h"

#include <algorithm>
#include <cmath>

#include "serde/serde.h"
#include "util/stats.h"

namespace substream {

CountSketch::CountSketch(int depth, std::uint64_t width, std::uint64_t seed)
    : depth_(depth), width_(width), seed_(seed) {
  SUBSTREAM_CHECK(depth >= 1);
  SUBSTREAM_CHECK(width >= 1);
  rows_.assign(static_cast<std::size_t>(depth),
               std::vector<std::int64_t>(width, 0));
  row_sumsq_.assign(static_cast<std::size_t>(depth), 0.0);
  bucket_hashes_.reserve(static_cast<std::size_t>(depth));
  sign_hashes_.reserve(static_cast<std::size_t>(depth));
  for (int r = 0; r < depth; ++r) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * static_cast<std::uint64_t>(r)));
    // 4-wise independent signs make row L2^2 an unbiased F2 estimate with
    // bounded variance (as in AMS).
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * static_cast<std::uint64_t>(r) + 1));
  }
}

void CountSketch::Update(item_t item, std::int64_t count) {
  total_ += count;
  for (int r = 0; r < depth_; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    std::int64_t& cell = rows_[rr][bucket_hashes_[rr].Bucket(item, width_)];
    const std::int64_t delta = sign_hashes_[rr].Sign(item) * count;
    // (x + d)^2 - x^2 = 2xd + d^2, keeping the row norm current in O(1).
    row_sumsq_[rr] += static_cast<double>(2 * cell * delta + delta * delta);
    cell += delta;
  }
}

void CountSketch::UpdateBatch(const item_t* data, std::size_t n) {
  for (int r = 0; r < depth_; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    std::int64_t* const row = rows_[rr].data();
    const PolynomialHash& bucket_hash = bucket_hashes_[rr];
    const PolynomialHash& sign_hash = sign_hashes_[rr];
    const std::uint64_t width = width_;
    double sumsq = row_sumsq_[rr];
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t& cell = row[bucket_hash.Bucket(data[i], width)];
      const std::int64_t delta = sign_hash.Sign(data[i]);
      sumsq += static_cast<double>(2 * cell * delta + 1);
      cell += delta;
    }
    row_sumsq_[rr] = sumsq;
  }
  total_ += static_cast<std::int64_t>(n);
}

void CountSketch::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
  std::fill(row_sumsq_.begin(), row_sumsq_.end(), 0.0);
  total_ = 0;
}

bool CountSketch::MergeCompatibleWith(const CountSketch& other) const {
  return depth_ == other.depth_ && width_ == other.width_ &&
         seed_ == other.seed_;
}

void CountSketch::Merge(const CountSketch& other) {
  SUBSTREAM_CHECK_MSG(MergeCompatibleWith(other),
                      "merging incompatible CountSketches");
  for (int r = 0; r < depth_; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    double sumsq = 0.0;
    for (std::uint64_t c = 0; c < width_; ++c) {
      rows_[rr][c] += other.rows_[rr][c];
      sumsq += static_cast<double>(rows_[rr][c]) *
               static_cast<double>(rows_[rr][c]);
    }
    row_sumsq_[rr] = sumsq;
  }
  total_ += other.total_;
}

double CountSketch::Estimate(item_t item) const {
  std::vector<double> row_estimates;
  row_estimates.reserve(static_cast<std::size_t>(depth_));
  for (int r = 0; r < depth_; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    row_estimates.push_back(
        static_cast<double>(sign_hashes_[rr].Sign(item)) *
        static_cast<double>(rows_[rr][bucket_hashes_[rr].Bucket(item, width_)]));
  }
  return Median(std::move(row_estimates));
}

double CountSketch::EstimateF2() const {
  return Median(row_sumsq_);
}

std::size_t CountSketch::SpaceBytes() const {
  std::size_t bytes =
      static_cast<std::size_t>(depth_) * width_ * sizeof(std::int64_t);
  for (const auto& h : bucket_hashes_) bytes += h.SpaceBytes();
  for (const auto& h : sign_hashes_) bytes += h.SpaceBytes();
  return bytes;
}

void CountSketch::Serialize(serde::Writer& out) const {
  out.Record(serde::TypeTag::kCountSketch);
  out.Varint(static_cast<std::uint64_t>(depth_));
  out.Varint(width_);
  out.U64(seed_);
  out.Svarint(total_);
  // Row norms are serialized (not recomputed) so a decoded sketch is
  // bit-identical to the live one, incremental float error included.
  for (double sumsq : row_sumsq_) out.F64(sumsq);
  for (const auto& row : rows_) {
    for (std::int64_t c : row) out.Svarint(c);
  }
}

std::optional<CountSketch> CountSketch::Deserialize(serde::Reader& in) {
  if (!in.ExpectRecord(serde::TypeTag::kCountSketch)) return std::nullopt;
  const std::uint64_t depth = in.Varint();
  const std::uint64_t width = in.Varint();
  const std::uint64_t seed = in.U64();
  const std::int64_t total = in.Svarint();
  if (!in.ok() || depth < 1 || depth > 64 || width < 1 ||
      width > (1ULL << 48)) {
    return std::nullopt;
  }
  if (!in.CanHold(depth * width, 1)) return std::nullopt;
  CountSketch sketch(static_cast<int>(depth), width, seed);
  sketch.total_ = total;
  for (double& sumsq : sketch.row_sumsq_) sumsq = in.F64();
  for (auto& row : sketch.rows_) {
    for (std::int64_t& c : row) c = in.Svarint();
  }
  if (!in.ok()) return std::nullopt;
  return sketch;
}

namespace {

int DepthFromDelta(double delta) {
  SUBSTREAM_CHECK(delta > 0.0 && delta < 1.0);
  // Median amplification: O(log 1/delta) rows.
  return std::max(5, static_cast<int>(std::ceil(4.0 * std::log(1.0 / delta))) | 1);
}

}  // namespace

CountSketchHeavyHitters::CountSketchHeavyHitters(double phi,
                                                 double eps_resolution,
                                                 double delta,
                                                 std::uint64_t seed)
    : phi_(phi),
      sketch_(DepthFromDelta(delta),
              // Point error ~ sqrt(F2/width); to resolve phi*sqrt(F2) with
              // relative precision eps we need width >= c/(eps*phi)^2. The
              // constant 2 relies on the median over depth rows for the
              // rest of the confidence.
              std::max<std::uint64_t>(
                  8, static_cast<std::uint64_t>(std::ceil(
                         2.0 / (eps_resolution * eps_resolution * phi * phi)))),
              seed) {
  SUBSTREAM_CHECK(phi > 0.0 && phi <= 1.0);
  SUBSTREAM_CHECK(eps_resolution > 0.0 && eps_resolution < 1.0);
  capacity_ = static_cast<std::size_t>(std::ceil(8.0 / (phi * phi))) + 16;
}

void CountSketchHeavyHitters::Update(item_t item, count_t count) {
  updates_ += count;
  sketch_.Update(item, static_cast<std::int64_t>(count));
  const double est = sketch_.Estimate(item);
  // Cheap pre-filter: sqrt(F2) >= F1/sqrt(n)... instead of recomputing the
  // F2 estimate per update (expensive), compare against a lower bound that
  // uses the running update count: sqrt(F2(L)) >= sqrt(F1(L)). Anything that
  // could possibly be heavy at the end clears half of phi * sqrt(F1 so far).
  const double lower_bound_sqrt_f2 =
      std::sqrt(static_cast<double>(updates_));
  if (est >= 0.5 * phi_ * lower_bound_sqrt_f2) {
    MaybeInsert(item, est);
  }
}

void CountSketchHeavyHitters::UpdateBatch(const item_t* data, std::size_t n) {
  UpdateBatchByLoop(*this, data, n);
}

bool CountSketchHeavyHitters::MergeCompatibleWith(
    const CountSketchHeavyHitters& other) const {
  return phi_ == other.phi_ && capacity_ == other.capacity_ &&
         sketch_.MergeCompatibleWith(other.sketch_);
}

void CountSketchHeavyHitters::Merge(const CountSketchHeavyHitters& other) {
  SUBSTREAM_CHECK_MSG(MergeCompatibleWith(other),
                      "merging CountSketch heavy-hitter trackers with "
                      "different phi/capacity");
  sketch_.Merge(other.sketch_);  // enforces geometry + seed equality
  updates_ += other.updates_;
  // Re-estimate BOTH pools against the merged sketch before unioning, so
  // eviction compares current estimates rather than stale per-shard ones.
  for (auto& [item, estimate] : candidates_) {
    estimate = sketch_.Estimate(item);
  }
  for (const auto& [item, stale] : other.candidates_) {
    (void)stale;
    MaybeInsert(item, sketch_.Estimate(item));
  }
}

void CountSketchHeavyHitters::Reset() {
  sketch_.Reset();
  candidates_.clear();
  updates_ = 0;
}

void CountSketchHeavyHitters::MaybeInsert(item_t item, double estimate) {
  auto it = candidates_.find(item);
  if (it != candidates_.end()) {
    it->second = estimate;
    return;
  }
  if (candidates_.size() < capacity_) {
    candidates_.emplace(item, estimate);
    return;
  }
  auto weakest = candidates_.begin();
  for (auto jt = candidates_.begin(); jt != candidates_.end(); ++jt) {
    if (jt->second < weakest->second) weakest = jt;
  }
  if (weakest->second < estimate) {
    candidates_.erase(weakest);
    candidates_.emplace(item, estimate);
  }
}

std::vector<std::pair<item_t, double>> CountSketchHeavyHitters::Candidates(
    double threshold_phi) const {
  std::vector<std::pair<item_t, double>> out;
  const double threshold = threshold_phi * std::sqrt(sketch_.EstimateF2());
  for (const auto& [item, stale] : candidates_) {
    (void)stale;
    const double est = sketch_.Estimate(item);
    if (est >= threshold) out.emplace_back(item, est);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::size_t CountSketchHeavyHitters::SpaceBytes() const {
  return sketch_.SpaceBytes() +
         candidates_.size() * (sizeof(item_t) + sizeof(double));
}

void CountSketchHeavyHitters::Serialize(serde::Writer& out) const {
  out.Record(serde::TypeTag::kCountSketchHeavyHitters);
  out.F64(phi_);
  out.Varint(capacity_);
  out.Varint(updates_);
  sketch_.Serialize(out);
  serde::WriteDoubleMap(out, candidates_);
}

std::optional<CountSketchHeavyHitters> CountSketchHeavyHitters::Deserialize(
    serde::Reader& in) {
  if (!in.ExpectRecord(serde::TypeTag::kCountSketchHeavyHitters)) {
    return std::nullopt;
  }
  const double phi = in.F64();
  const std::uint64_t capacity = in.Varint();
  const count_t updates = in.Varint();
  if (!in.ok() || !serde::ValidProbability(phi) ||
      capacity > (1ULL << 48)) {
    return std::nullopt;
  }
  auto sketch = CountSketch::Deserialize(in);
  if (!sketch) return std::nullopt;
  // Fixed safe accuracy knobs for construction; the nested record replaces
  // the geometry they produce (see CountMinHeavyHitters::Deserialize).
  CountSketchHeavyHitters tracker(0.5, 0.5, 0.5, sketch->seed());
  tracker.phi_ = phi;
  tracker.capacity_ = capacity;
  tracker.updates_ = updates;
  tracker.sketch_ = std::move(*sketch);
  if (!serde::ReadDoubleMap(in, &tracker.candidates_)) return std::nullopt;
  if (tracker.candidates_.size() > tracker.capacity_) return std::nullopt;
  return tracker;
}

}  // namespace substream
