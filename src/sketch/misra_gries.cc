#include "sketch/misra_gries.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "serde/serde.h"

namespace substream {

MisraGries::MisraGries(std::size_t k) : k_(k) {
  SUBSTREAM_CHECK(k >= 1);
  counters_.reserve(k + 1);
}

void MisraGries::Update(item_t item, count_t count) {
  total_ += count;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += count;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(item, count);
    return;
  }
  // Decrement all counters by the largest amount the newcomer supports;
  // batched variant of the classic one-by-one decrement.
  count_t min_count = count;
  for (const auto& [key, value] : counters_) {
    (void)key;
    min_count = std::min(min_count, value);
  }
  decrement_total_ += min_count;
  for (auto jt = counters_.begin(); jt != counters_.end();) {
    jt->second -= min_count;
    if (jt->second == 0) {
      jt = counters_.erase(jt);
    } else {
      ++jt;
    }
  }
  if (count > min_count) counters_.emplace(item, count - min_count);
}

bool MisraGries::MergeCompatibleWith(const MisraGries& other) const {
  return k_ == other.k_;
}

void MisraGries::Merge(const MisraGries& other) {
  SUBSTREAM_CHECK_MSG(MergeCompatibleWith(other),
                      "merging MG summaries of different k");
  total_ += other.total_;
  decrement_total_ += other.decrement_total_;
  for (const auto& [item, count] : other.counters_) {
    counters_[item] += count;
  }
  if (counters_.size() <= k_) return;
  // Find the (k+1)-st largest counter value; subtracting it everywhere is
  // the batched decrement that restores the size bound.
  std::vector<count_t> values;
  values.reserve(counters_.size());
  for (const auto& [item, count] : counters_) {
    (void)item;
    values.push_back(count);
  }
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k_),
                   values.end(), std::greater<count_t>());
  const count_t cut = values[k_];
  decrement_total_ += cut;
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= cut) {
      it = counters_.erase(it);
    } else {
      it->second -= cut;
      ++it;
    }
  }
}

void MisraGries::Serialize(serde::Writer& out) const {
  out.Record(serde::TypeTag::kMisraGries);
  out.Varint(k_);
  out.Varint(total_);
  out.Varint(decrement_total_);
  serde::WriteCountMap(out, counters_);
}

std::optional<MisraGries> MisraGries::Deserialize(serde::Reader& in) {
  if (!in.ExpectRecord(serde::TypeTag::kMisraGries)) return std::nullopt;
  const std::uint64_t k = in.Varint();
  const count_t total = in.Varint();
  const count_t decrement_total = in.Varint();
  if (!in.ok() || k < 1 || k > (1ULL << 48)) return std::nullopt;
  MisraGries summary(k);
  summary.total_ = total;
  summary.decrement_total_ = decrement_total;
  if (!serde::ReadCountMap(in, &summary.counters_)) return std::nullopt;
  if (summary.counters_.size() > k) return std::nullopt;  // size invariant
  return summary;
}

count_t MisraGries::Estimate(item_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<item_t, count_t>> MisraGries::Candidates(
    double threshold) const {
  std::vector<std::pair<item_t, count_t>> out;
  for (const auto& [item, count] : counters_) {
    if (static_cast<double>(count) >= threshold) out.emplace_back(item, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace substream
