/// Continuously-rotating sampled-NetFlow collector: the deployment shape
/// the windowed subsystem exists for — now configured by an ACCURACY
/// BUDGET, not hand-picked geometry.
///
/// One {byte budget, (epsilon, delta) targets} tuple configures the whole
/// fleet: the geometry planner solves every summary's geometry from it
/// once, the multi-core ShardedMonitor pipeline and the WindowedMonitor
/// ring are both built from that single resolved plan (so every window is
/// merge-compatible by construction), and the startup banner prints the
/// geometry the planner chose plus the accuracy it promises.
///
/// A router exports a 1-in-1/p packet sample; the collector ingests it
/// through the pipeline and closes a measurement window every
/// `window_packets` packets. Each closed window — one merged Monitor per
/// epoch — is adopted into the ring, which answers sliding-window and
/// exponential-decay questions while checkpointing the horizon to disk.
///
/// The ring keeps the PlanSpec alive: at every merge-horizon boundary it
/// re-solves the plan from the closed window's OBSERVED workload (F0, F2,
/// volume). When the re-plan changes geometry the whole ring is replaced —
/// geometry never changes mid-horizon, so mixed-geometry merges cannot
/// happen — and this collector rebuilds its producer pipeline from
/// `ring.config()`, the one source of truth. Every re-plan decision is
/// printed from `ring.replan_log()`.
///
/// A volumetric attack begins mid-run; the decayed entropy collapses
/// within a window or two of onset while the all-time view barely moves.
/// Watch the re-plan lines: the first boundary adapts the unhinted plan
/// down to the observed background (~2^18 flows), and the attack's skew
/// shows up in the observed-F2 column of the next boundary.
///
///   ./windowed_netflow [p] [windows]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include <string>

#include "core/substream.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "plan/compiler.h"
#include "plan/plan.h"
#include "util/numa.h"

using namespace substream;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::size_t total_windows =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;
  const std::size_t window_packets = 1 << 18;
  const std::uint64_t seed = 42;

  // The whole fleet's configuration: sampling rate, a byte budget and the
  // accuracy we want. No widths, depths or cell sizes anywhere — the
  // planner solves those, and re-solves them as the workload reveals
  // itself.
  MonitorConfig config;
  config.p = p;
  config.universe = 1 << 20;
  config.hh_alpha = 0.05;
  plan::PlanSpec spec;
  spec.budget_bytes = 4 << 20;  // 4 MiB per window
  spec.f0.epsilon = 0.05;
  spec.f2.epsilon = 0.10;
  spec.f2.delta = 0.05;
  config.plan = spec;

  const auto plan = plan::PlanFor(config);
  if (!plan) return 1;
  std::printf(
      "planned geometry for {budget=%zu B, f0 eps<=%.2f, f2 eps<=%.2f "
      "delta<=%.2f}:\n",
      spec.budget_bytes, spec.f0.epsilon, spec.f2.epsilon, spec.f2.delta);
  std::printf(
      "  f0 %s k=%zu | f2 %dx%llu over %d levels | hh %dx%llu | "
      "%d-bit cells | universe 2^%d\n",
      plan->f0_use_hll ? "hll" : "kmv", plan->kmv_k, plan->f2_cs_depth,
      static_cast<unsigned long long>(plan->f2_width), plan->f2_levels,
      plan->hh_depth, static_cast<unsigned long long>(plan->hh_width),
      CellBits(plan->cell_width),
      [](std::uint64_t u) {
        int bits = 0;
        while ((std::uint64_t{1} << bits) < u) ++bits;
        return bits;
      }(plan->universe));
  std::printf("  model %zu of %zu bytes; achieved f0 eps %.4f, f2 eps %.4f "
              "(delta %.4f)%s\n\n",
              plan->planned_bytes, spec.budget_bytes,
              plan->achieved_f0_epsilon, plan->achieved_f2_epsilon,
              plan->achieved_f2_delta,
              plan->degraded ? "  [DEGRADED: budget too small]" : "");

  ShardedMonitorOptions pipeline_options;
  pipeline_options.shards = 4;
  auto pipeline =
      std::make_unique<ShardedMonitor>(config, seed, pipeline_options);

  // The ring keeps the spec (plan_driven() == true) so it can re-plan at
  // horizon boundaries; the half-length horizon gives this short run two
  // boundaries to show the adaptation at.
  WindowedMonitorOptions ring_options;
  ring_options.windows = total_windows > 2 ? total_windows / 2 : 2;
  ring_options.decay = 0.5;  // a window ages to half weight per rotation
  WindowedMonitor ring(config, seed, ring_options);

  // Group layout the pipeline actually picked: workers were pinned into
  // per-NUMA-node shard groups (SKETCH_FORCE_NUMA_GROUPS emulates nodes on
  // a single-socket host), and Report/CollectWindow merge per group first.
  const std::string layout_tag =
      std::to_string(pipeline->groups()) + "x" +
      std::to_string(pipeline->shards() / pipeline->groups());
  std::printf("windowed sampled-netflow collector: p=%.3f, %zu windows of "
              "%zu packets, horizon %zu, decay %.2f\n",
              p, total_windows, window_packets, ring_options.windows,
              ring_options.decay);
  std::printf("topology: %s -> %zu shard group(s) of %zu shard(s) "
              "[layout %s]\n\n",
              numa::Describe(pipeline->topology()).c_str(),
              pipeline->groups(), pipeline->shards() / pipeline->groups(),
              layout_tag.c_str());
  std::printf("%-8s %-10s %-14s %-14s %-12s\n", "window", "traffic",
              "H(sliding-2)", "H(decayed)", "stalls");

  ZipfGenerator background(200000, 1.1, 7);
  Rng attack_rng(9);
  BernoulliSampler sampler(p, seed + 100);
  const item_t attack_flow = 999999999;
  obs::MetricsSnapshot prev_snap;
  std::size_t replans_seen = 0;

  for (std::size_t w = 0; w < total_windows; ++w) {
    // The attack starts at the midpoint and carries 40% of the packets.
    const bool attacking = w >= total_windows / 2;
    Stream sampled;
    for (std::size_t i = 0; i < window_packets; ++i) {
      const item_t flow = (attacking && attack_rng.NextBernoulli(0.4))
                              ? attack_flow
                              : background.Next();
      if (sampler.Keep()) sampled.push_back(flow);
    }
    pipeline->Ingest(sampled);

    // Close the window without stalling ingest, collect the merged epoch
    // and age it into the ring. Health is read off the closed window
    // before the ring absorbs it: this is the per-window degradation
    // signal (fill/spill/saturation per summary plus derived bounds).
    pipeline->Rotate();
    auto closed = pipeline->CollectWindow(pipeline->CurrentEpoch() - 1);
    if (!closed) return 1;
    const obs::HealthReport window_health = closed->Health();
    ring.AdoptWindow(std::move(*closed));

    // A horizon boundary may have re-planned: the ring replaced itself
    // with the new geometry (dropping the old-geometry horizon), so the
    // producer pipeline must be rebuilt from the ring's resolved config —
    // a stale producer would now be loudly merge-incompatible.
    while (replans_seen < ring.replan_log().size()) {
      const plan::ReplanEvent& event = ring.replan_log()[replans_seen++];
      std::printf("  re-plan @epoch %llu: observed f0=%.0f f2=%.3g n=%.0f "
                  "-> universe %llu->%llu, f2 width %llu->%llu, kmv k "
                  "%zu->%zu (%zu B)\n",
                  static_cast<unsigned long long>(event.epoch),
                  event.observed_f0, event.observed_f2, event.observed_n,
                  static_cast<unsigned long long>(event.old_universe),
                  static_cast<unsigned long long>(event.new_universe),
                  static_cast<unsigned long long>(event.old_max_f2_width),
                  static_cast<unsigned long long>(event.new_max_f2_width),
                  event.old_kmv_k, event.new_kmv_k, event.planned_bytes);
      pipeline = std::make_unique<ShardedMonitor>(ring.config(), seed,
                                                  pipeline_options);
    }

    // Crash-safe handoff: the whole horizon, one CRC-validated file.
    ring.Checkpoint("/tmp/windowed_netflow.ckpt");

    const MonitorReport sliding = ring.Report(/*k=*/2);
    const MonitorReport decayed = ring.ReportDecayed();
    std::printf("%-8zu %-10.0f %-14.3f %-14.3f %-12llu%s\n", w,
                sliding.scaled_length, sliding.entropy->entropy,
                decayed.entropy->entropy,
                static_cast<unsigned long long>(
                    pipeline->Stats().producer_stalls),
                attacking ? "  << attack" : "");

    // Per-window telemetry: the process registry as JSON, with rates
    // diffed against the previous window's snapshot (what a scraper would
    // compute), plus the closed window's health report. The stall and
    // rotate-latency series live in the metrics line; spill/fill
    // degradation lives in the health line.
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Global().Snapshot();
    std::printf("  metrics[groups=%s] %s\n", layout_tag.c_str(),
                obs::ToJson(snap, w == 0 ? nullptr : &prev_snap).c_str());
    std::printf("  health  %s\n", obs::ToJson(window_health).c_str());
    prev_snap = snap;
  }

  // A fresh process restores the ring and keeps answering. The restored
  // ring keeps the planned geometry but drops the spec: re-planning stops,
  // which is exactly what a replayed checkpoint needs (its windows must
  // stay mergeable with what the file holds).
  auto restored = WindowedMonitor::Restore("/tmp/windowed_netflow.ckpt");
  if (!restored) return 1;
  std::printf("\nrestored from checkpoint: %zu windows, epoch %llu, "
              "plan-driven=%s, decayed entropy %.3f bits\n",
              restored->retained(),
              static_cast<unsigned long long>(restored->epoch()),
              restored->plan_driven() ? "yes" : "no",
              restored->ReportDecayed().entropy->entropy);
  std::remove("/tmp/windowed_netflow.ckpt");
  return 0;
}
