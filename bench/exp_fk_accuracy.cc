/// E1 (Theorem 1): (1+eps, delta) estimation of F_k(P) from the sampled
/// stream in space O~(p^-1 m^{1-2/k}), for k in {2, 3, 4}, with feasibility
/// threshold p = Omega~(min(m, n)^{-1/k}).
///
/// Prints, per (k, p): the median/p90 relative error of Algorithm 1 over
/// trials using the exact-collision backend (isolating pure sampling error,
/// i.e. the information-theoretic content of the theorem), the sketch
/// backend's error and measured space (the streaming content), and whether
/// p clears the feasibility threshold. Expectation from the paper: small
/// error above threshold, degradation below; sketch space ~ m^{1-2/k}/p.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fk_estimator.h"
#include "stream/exact_stats.h"
#include "stream/generators.h"
#include "stream/samplers.h"
#include "util/math.h"
#include "util/stats.h"

namespace substream {
namespace {

using bench::FmtE;
using bench::FmtF;
using bench::FmtI;
using bench::Table;

struct TrialResult {
  double error = 0.0;
  std::size_t space = 0;
};

TrialResult RunTrial(const Stream& original, double truth,
                     const FkParams& params, std::uint64_t seed) {
  BernoulliSampler sampler(params.p, seed);
  FkEstimator estimator(params, seed + 9000);
  for (item_t a : original) {
    if (sampler.Keep()) estimator.Update(a);
  }
  return {RelativeError(estimator.Estimate(), truth), estimator.SpaceBytes()};
}

void RunExperiment() {
  const std::size_t n = 1 << 17;
  const item_t m = 1 << 15;
  const int kTrials = 7;
  ZipfGenerator gen(m, 1.1, 42);
  Stream original = Materialize(gen, n);
  FrequencyTable exact = ExactStats(original);

  std::printf("E1: Fk estimation from a Bernoulli(p)-sampled stream\n");
  std::printf("    (Theorem 1; workload Zipf(1.1), n=%zu, m=%llu, %d trials"
              " per cell)\n\n",
              n, static_cast<unsigned long long>(m), kTrials);

  Table table({"k", "p", "p_min(Thm1)", "feasible", "exact-cnt med.err",
               "exact-cnt p90", "sketch med.err", "sketch space(KB)",
               "theory space ~ m^(1-2/k)/p"});

  for (int k : {2, 3, 4}) {
    const double truth = exact.Fk(k);
    const double p_min = FkEstimator::MinSamplingProbability(
        k, m, static_cast<std::uint64_t>(n));
    for (double p : {1.0, 0.3, 0.1, 0.03}) {
      FkParams exact_params;
      exact_params.k = k;
      exact_params.p = p;
      exact_params.universe = m;
      exact_params.epsilon = 0.2;
      exact_params.backend = CollisionBackend::kExactCollisions;

      std::vector<double> exact_errors;
      for (int t = 0; t < kTrials; ++t) {
        exact_errors.push_back(
            RunTrial(original, truth, exact_params,
                     17 * static_cast<std::uint64_t>(t) + 1)
                .error);
      }

      FkParams sketch_params = exact_params;
      sketch_params.backend = CollisionBackend::kSketch;
      sketch_params.space_multiplier = 0.5;
      sketch_params.max_width = 1 << 14;
      std::vector<double> sketch_errors;
      std::size_t sketch_space = 0;
      for (int t = 0; t < 3; ++t) {
        TrialResult r = RunTrial(original, truth, sketch_params,
                                 23 * static_cast<std::uint64_t>(t) + 5);
        sketch_errors.push_back(r.error);
        sketch_space = r.space;
      }

      const double theory_space =
          std::pow(static_cast<double>(m), 1.0 - 2.0 / k) / p;
      table.AddRow({std::to_string(k), FmtF(p, 2), FmtF(p_min, 3),
                    p >= p_min ? "yes" : "NO",
                    FmtF(Median(exact_errors), 3),
                    FmtF(Quantile(exact_errors, 0.9), 3),
                    FmtF(Median(sketch_errors), 3),
                    FmtI(static_cast<double>(sketch_space) / 1024.0),
                    FmtI(theory_space)});
    }
  }
  table.Print();
  std::printf(
      "\nReading: error grows as p shrinks and as k grows (the beta ladder\n"
      "amplifies collision noise), staying within the (1+eps) regime above\n"
      "the feasibility threshold. Rows flagged NO sit below Theorem 1's\n"
      "p_min; their error is already elevated here and is unboundable in\n"
      "the worst case (the Bar-Yossef hard instances are near-uniform —\n"
      "this Zipf head still leaks some signal). Sketch space tracks the\n"
      "m^(1-2/k)/p column shape.\n");
}

}  // namespace
}  // namespace substream

int main() {
  substream::RunExperiment();
  return 0;
}
