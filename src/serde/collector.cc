#include "serde/collector.h"

#include <utility>

#include "serde/checkpoint.h"
#include "serde/serde.h"

namespace substream {
namespace serde {

bool Collector::AddSerialized(const std::uint8_t* data, std::size_t size) {
  Reader reader(data, size);
  auto monitor = Monitor::Deserialize(reader);
  // A record transports exactly one monitor; trailing bytes indicate a
  // framing error upstream.
  if (!monitor || reader.remaining() != 0) {
    ++rejected_;
    return false;
  }
  return Fold(std::move(monitor));
}

bool Collector::AddCheckpointFile(const std::string& path) {
  auto monitor = Monitor::Restore(path);
  if (!monitor) {
    ++rejected_;
    return false;
  }
  return Fold(std::move(monitor));
}

bool Collector::Fold(std::optional<Monitor> monitor) {
  if (!aggregate_) {
    aggregate_.emplace(std::move(*monitor));
    ++accepted_;
    return true;
  }
  if (!aggregate_->MergeCompatibleWith(*monitor)) {
    ++rejected_;
    return false;
  }
  aggregate_->Merge(*monitor);
  ++accepted_;
  return true;
}

MonitorReport Collector::Report() const {
  SUBSTREAM_CHECK_MSG(aggregate_.has_value(),
                      "Collector::Report with no accepted records");
  return aggregate_->Report();
}

}  // namespace serde
}  // namespace substream
