#include "core/sharded_monitor.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "plan/compiler.h"
#include "util/hash.h"

namespace substream {

namespace {

/// Registry handles for the pipeline, resolved once per process. All sites
/// are batch-granular (per flushed batch, per rotation, per report) — the
/// per-item staging loop is untouched.
struct PipelineMetrics {
  obs::Histogram& batch_consume_ns;
  obs::Histogram& rotate_ns;
  obs::Histogram& cross_group_merge_ns;
  obs::Gauge& ring_occupancy_hwm;
  obs::Gauge& groups;
  obs::Counter& producer_stalls;
  obs::Counter& buffers_recycled;
  obs::Counter& batches_consumed;
  obs::Counter& items_consumed;
  obs::Gauge& sampled_rate_ppm;
  obs::Counter& sampled_items_skipped;
  obs::Counter& stall_wait_ns;

  static PipelineMetrics& Get() {
    static PipelineMetrics metrics{
        obs::MetricsRegistry::Global().GetHistogram(
            "substream_sharded_batch_consume_duration_ns",
            "Wall time a worker spends applying one batch to its shard "
            "monitor"),
        obs::MetricsRegistry::Global().GetHistogram(
            "substream_sharded_rotate_duration_ns",
            "Producer-side cost of Rotate(): closing-epoch flush plus one "
            "marker push per shard"),
        obs::MetricsRegistry::Global().GetHistogram(
            "substream_sharded_cross_group_merge_duration_ns",
            "Cross-group phase of Report()/CollectWindow(): folding the "
            "per-group merged monitors (observed only when groups > 1)"),
        obs::MetricsRegistry::Global().GetGauge(
            "substream_sharded_ring_occupancy_hwm",
            "High-water mark of per-shard ring occupancy (batches) observed "
            "at push time"),
        obs::MetricsRegistry::Global().GetGauge(
            "substream_sharded_groups",
            "Shard groups in use by the most recently constructed pipeline "
            "(1 on single-node hosts without SKETCH_FORCE_NUMA_GROUPS)"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sharded_producer_stalls_total",
            "Flushes that found a ring full and backed off"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sharded_buffers_recycled_total",
            "Staged batch column buffers reused from the worker freelist"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sharded_batches_consumed_total",
            "Batches applied to shard monitors by workers"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sharded_items_consumed_total",
            "Items applied to shard monitors by workers"),
        obs::MetricsRegistry::Global().GetGauge(
            "substream_sampled_rate",
            "Adaptive sampled-ingest admission probability in parts per "
            "million (1000000 = exact counting)"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sampled_items_skipped_total",
            "Items dropped by the adaptive sampler under overload"),
        obs::MetricsRegistry::Global().GetCounter(
            "substream_sharded_stall_wait_ns_total",
            "Nanoseconds the producer spent blocked on full rings"),
    };
    return metrics;
  }
};

/// Salt for the shard-routing hash, so routing is independent of every
/// sketch hash (which are all derived through DeriveSeed chains).
constexpr std::uint64_t kShardSalt = 0x5ca1ab1e0ddba11ULL;

std::size_t RoundUpPow2(std::size_t x) {
  std::size_t pow2 = 1;
  while (pow2 < x) pow2 <<= 1;
  return pow2;
}

/// Bounded exponential backoff for spin-wait loops: a burst of yields for
/// the short waits, then sleeps doubling from 1us up to `max_sleep_us` so a
/// saturated pipeline burns bounded CPU instead of spinning forever (the
/// seed's FlushStaged yielded unboundedly). The default cap matches the
/// historical ~1ms; the producer's ring-full path threads
/// ShardedMonitorOptions::stall_backoff_max_us through instead.
void BackoffPause(std::size_t* spins, std::uint64_t max_sleep_us = 1024) {
  constexpr std::size_t kYields = 64;
  constexpr std::size_t kMaxSleepShift = 20;
  if (*spins < kYields) {
    std::this_thread::yield();
  } else {
    const std::size_t shift =
        std::min<std::size_t>(*spins - kYields, kMaxSleepShift);
    const std::uint64_t sleep_us =
        std::min<std::uint64_t>(1ULL << shift, std::max<std::uint64_t>(
                                                   max_sleep_us, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  ++*spins;
}

}  // namespace

ShardedMonitor::ShardedMonitor(const MonitorConfig& config, std::uint64_t seed,
                               ShardedMonitorOptions options)
    // Resolve any accuracy-budget plan ONCE, here: every shard monitor, the
    // merge scratches and every retired window are then built from the same
    // explicit geometry, so one {budget, targets} tuple configures the whole
    // fleet (and SolvePlan never runs on the per-worker construction path).
    : config_(plan::ResolveMonitorConfig(config)), seed_(seed),
      options_(options) {
  SUBSTREAM_CHECK_MSG(options.shards >= 1, "ShardedMonitor needs >= 1 shard");
  SUBSTREAM_CHECK(options.ring_capacity >= 1);
  SUBSTREAM_CHECK(options.batch_items >= 1);
  SUBSTREAM_CHECK_MSG(options.stall_backoff_max_us >= 1,
                      "stall_backoff_max_us must be >= 1");
  options_.ring_capacity = RoundUpPow2(options.ring_capacity);
  if (config_.overload_sampling) {
    // The sampler's RNG seed derives from the pipeline seed on its own
    // stream (sketch seeds use DeriveSeed(seed, 1..4) via Monitor), so
    // admission decisions are decorrelated from every hash in the fleet.
    sampler_.emplace(options_.overload, DeriveSeed(seed, 0x0ad));
    sampler_last_stalls_ = producer_stalls_;
  }
  PipelineMetrics::Get().sampled_rate_ppm.Set(1000000);

  const std::size_t shards = options.shards;
  topology_ = numa::DetectTopology();
  std::size_t groups = options.groups != 0 ? options.groups : topology_.groups();
  if (groups > shards) groups = shards;
  if (groups < 1) groups = 1;

  // Contiguous balanced shard ranges per group: group g owns
  // [g*S/G, (g+1)*S/G). Contiguity is what makes the two-level merge visit
  // shards in the same total order as a flat fold.
  group_begin_.resize(groups + 1);
  for (std::size_t g = 0; g <= groups; ++g) {
    group_begin_[g] = g * shards / groups;
  }
  shard_group_.resize(shards);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t s = group_begin_[g]; s < group_begin_[g + 1]; ++s) {
      shard_group_[s] = g;
    }
  }
  group_cpus_.reserve(groups);
  group_hwm_gauges_.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    group_cpus_.push_back(topology_.cpus[g % topology_.groups()]);
    group_hwm_gauges_.push_back(&obs::MetricsRegistry::Global().GetGauge(
        "substream_sharded_group" + std::to_string(g) + "_ring_occupancy_hwm",
        "High-water mark of ring occupancy (batches) across the group's "
        "shards"));
  }
  group_ring_hwm_.assign(groups, 0);
  PipelineMetrics::Get().groups.Set(static_cast<std::int64_t>(groups));

  // The worker-owned pieces (monitor + both rings) start empty: each worker
  // allocates its own on its thread after pinning, so the first touch of
  // those pages happens on the consuming node.
  monitors_.resize(shards);
  rings_.resize(shards);
  free_rings_.resize(shards);
  sync_.reserve(shards);
  staged_.resize(shards);
  batches_pushed_.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    sync_.push_back(std::make_unique<ShardSync>());
    staged_[s].items.reserve(options_.batch_items);
    staged_[s].hashes.reserve(options_.batch_items);
  }
  workers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
  // Handshake: every producer-side touch of rings_/monitors_ happens after
  // this acquire observes the workers' release-increments, which publish
  // the pointer stores above it.
  std::size_t spins = 0;
  while (ready_workers_.load(std::memory_order_acquire) < shards) {
    BackoffPause(&spins);
  }
}

ShardedMonitor::~ShardedMonitor() {
  // Ship and consume everything staged before stopping: the seed version
  // set done_ with staged batches still in hand, so a pipeline destroyed
  // without Report() silently dropped them while ItemsIngested() claimed
  // otherwise.
  Drain();
  done_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  count_t consumed = 0;
  for (const auto& sync : sync_) {
    consumed += sync->items_consumed.load(std::memory_order_relaxed);
  }
  // Every ingested item is either applied by a worker or (accountably)
  // dropped by the adaptive sampler — nothing may vanish silently.
  SUBSTREAM_CHECK_MSG(consumed + items_sampled_out_ == items_ingested_,
                      "ShardedMonitor destroyed with %llu of %llu ingested "
                      "items unconsumed",
                      static_cast<unsigned long long>(items_ingested_ -
                                                      items_sampled_out_ -
                                                      consumed),
                      static_cast<unsigned long long>(items_ingested_));
}

std::size_t ShardedMonitor::ShardOfPrehash(std::uint64_t prehash,
                                           std::size_t shards) {
  // A salted remix keeps routing decorrelated from every sketch's bucket
  // derivations (which remix the same prehash with DeriveSeed chains);
  // fast-range replaces the historical `%`.
  return shards <= 1
             ? 0
             : static_cast<std::size_t>(
                   FastRange64(RemixHash(prehash, kShardSalt), shards));
}

std::size_t ShardedMonitor::ShardOf(item_t item, std::size_t shards) {
  return ShardOfPrehash(PreHash(item), shards);
}

std::size_t ShardedMonitor::GroupOfShard(std::size_t s) const {
  return shard_group_[s];
}

void ShardedMonitor::WorkerLoop(std::size_t shard) {
  if (options_.pin_workers) {
    // Best-effort: a refused affinity call leaves the worker where the
    // scheduler put it (and first-touch below still lands somewhere valid).
    numa::PinThreadToCpus(group_cpus_[shard_group_[shard]]);
  }
  // First-touch: the shard's monitor (every CounterTable level inside it)
  // and both rings are constructed HERE, after pinning, so their pages are
  // faulted in on this worker's node.
  monitors_[shard] = std::make_unique<Monitor>(config_, seed_);
  rings_[shard] = std::make_unique<BatchRing>(options_.ring_capacity);
  free_rings_[shard] = std::make_unique<BufferRing>(options_.ring_capacity);
  ShardSync& sync = *sync_[shard];
  sync.space_bytes.store(monitors_[shard]->SpaceBytes(),
                         std::memory_order_relaxed);
  // Release publishes the three pointer stores; the constructor's acquire
  // loop pairs with it before any producer-side access.
  ready_workers_.fetch_add(1, std::memory_order_release);

  Monitor* monitor = monitors_[shard].get();
  BatchRing& ring = *rings_[shard];
  std::uint64_t worker_epoch = 0;
  Batch batch;
  std::size_t idle_spins = 0;

  while (true) {
    if (ring.TryPop(&batch)) {
      idle_spins = 0;
      if (batch.epoch != worker_epoch) {
        // Epoch boundary (Rotate's marker, or the first data batch of the
        // new epoch): retire the closed window into the mailbox and swap
        // onto a fresh same-seeded Monitor. The allocation happens HERE,
        // on the worker — rotation never blocks the producer on it (and
        // the replacement window is first-touched on this node too).
        // Ordering: publish the fresh footprint BEFORE the mailbox insert,
        // so a concurrent SpaceBytes() momentarily undercounts the shard
        // (retiring window in neither place) rather than double-counting
        // it (stale counter + mailbox walk).
        Monitor closed = std::move(*monitor);
        *monitor = Monitor(config_, seed_);
        sync.space_bytes.store(monitor->SpaceBytes(),
                               std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(sync.retired_mu);
          sync.retired.emplace_back(worker_epoch, std::move(closed));
        }
        worker_epoch = batch.epoch;
      }
      const std::size_t consumed_items = batch.cols.size();
      if (consumed_items != 0) {
        if (options_.throttle_consumer_ns != 0) {
          // Chaos knob: simulate a slow consumer (see options doc).
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options_.throttle_consumer_ns));
        }
        const std::uint64_t start_ns = obs::NowNs();
        const PrehashedColumns cols{batch.cols.items.data(),
                                    batch.cols.hashes.data()};
        if (batch.weight > 1) {
          monitor->UpdatePrehashedWeighted(cols, consumed_items, batch.weight);
        } else {
          monitor->UpdatePrehashed(cols, consumed_items);
        }
        PipelineMetrics& metrics = PipelineMetrics::Get();
        metrics.batch_consume_ns.Observe(obs::NowNs() - start_ns);
        metrics.batches_consumed.Inc();
        metrics.items_consumed.Inc(consumed_items);
      }
      if (consumed_items != 0) {
        // Hand the drained column pair (capacities intact) back to the
        // producer's staging freelist. Opportunistic: a full freelist just
        // means the buffers deallocate here instead, off the ingest
        // critical path.
        batch.cols.clear();
        free_rings_[shard]->TryPush(std::move(batch.cols));
        batch.cols = ColumnBuffer();
      }
      sync.items_consumed.fetch_add(consumed_items,
                                    std::memory_order_relaxed);
      sync.space_bytes.store(monitor->SpaceBytes(), std::memory_order_relaxed);
      // Published LAST, with release: a producer that observes this count
      // has a happens-before edge to every monitor mutation above (the
      // Drain quiescence barrier Report/Collect/Reset rely on).
      sync.batches_consumed.fetch_add(1, std::memory_order_release);
      continue;
    }
    // done_ is set only after the destructor's Drain(), so an empty ring
    // here is final.
    if (done_.load(std::memory_order_acquire)) break;
    BackoffPause(&idle_spins);
  }
}

void ShardedMonitor::PushBatch(std::size_t shard, Batch&& batch) {
  if (!rings_[shard]->TryPush(std::move(batch))) {
    // Ring full: the saturation case. Count it once per blocked push, time
    // the whole block (stall severity, not just the event), and back off
    // (bounded by the options cap) until the worker frees a slot.
    ++producer_stalls_;
    PipelineMetrics::Get().producer_stalls.Inc();
    const std::uint64_t start_ns = obs::NowNs();
    std::size_t spins = 0;
    do {
      BackoffPause(&spins, options_.stall_backoff_max_us);
    } while (!rings_[shard]->TryPush(std::move(batch)));
    const std::uint64_t waited_ns = obs::NowNs() - start_ns;
    stall_wait_ns_ += waited_ns;
    PipelineMetrics::Get().stall_wait_ns.Inc(waited_ns);
  }
  ++batches_pushed_[shard];
  // Occupancy immediately after a successful push is this shard's depth
  // backlog; the process-wide gauge keeps the worst ever seen, the group
  // gauge the worst across the group's shards (a persistently hot group is
  // a slow or oversubscribed node, not a routing skew).
  const std::size_t occupancy = rings_[shard]->SizeApprox();
  PipelineMetrics::Get().ring_occupancy_hwm.SetMax(
      static_cast<std::int64_t>(occupancy));
  const std::size_t group = shard_group_[shard];
  if (occupancy > group_ring_hwm_[group]) {
    group_ring_hwm_[group] = occupancy;
    group_hwm_gauges_[group]->SetMax(static_cast<std::int64_t>(occupancy));
  }
}

void ShardedMonitor::RefillStaged(std::size_t shard) {
  // Prefer a column pair the shard's worker already drained: its capacity
  // was grown by a previous staging round, so the steady-state flush cycle
  // does no allocation at all.
  ColumnBuffer recycled;
  if (free_rings_[shard]->TryPop(&recycled)) {
    ++buffers_recycled_;
    PipelineMetrics::Get().buffers_recycled.Inc();
    staged_[shard] = std::move(recycled);
  } else {
    staged_[shard] = ColumnBuffer();
    staged_[shard].items.reserve(options_.batch_items);
    staged_[shard].hashes.reserve(options_.batch_items);
  }
}

void ShardedMonitor::ShipStaged(std::size_t shard) {
  if (staged_[shard].size() == 0) return;
  Batch batch;
  batch.epoch = epoch_;
  batch.weight = staged_weight_;
  batch.cols = std::move(staged_[shard]);
  RefillStaged(shard);
  PushBatch(shard, std::move(batch));
}

void ShardedMonitor::FlushStaged(std::size_t shard) {
  ShipStaged(shard);
  // Batch granularity is the adaptation cadence: occupancy right after the
  // push is the freshest backpressure signal, and reacting here (not per
  // item) keeps the sampler entirely off the staging hot loop.
  MaybeAdaptSampler(shard);
}

void ShardedMonitor::MaybeAdaptSampler(std::size_t shard) {
  if (!sampler_) return;
  const double occupancy = static_cast<double>(rings_[shard]->SizeApprox()) /
                           static_cast<double>(options_.ring_capacity);
  const std::uint64_t stall_delta = producer_stalls_ - sampler_last_stalls_;
  sampler_last_stalls_ = producer_stalls_;
  if (!sampler_->Observe(occupancy, stall_delta)) return;
  // The rate changed. Everything currently staged (all shards) was admitted
  // at the old rate — ship it under the old weight before adopting the new
  // one, so a batch never mixes weights.
  for (std::size_t s = 0; s < options_.shards; ++s) ShipStaged(s);
  staged_weight_ = sampler_->weight();
  PipelineMetrics::Get().sampled_rate_ppm.Set(
      static_cast<std::int64_t>(sampler_->rate() * 1e6));
}

void ShardedMonitor::Ingest(const item_t* data, std::size_t n) {
  items_ingested_ += n;
  const std::size_t shards = options_.shards;
  SampleController* sampler = sampler_ ? &*sampler_ : nullptr;
  count_t skipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Admission first: a skipped item pays one branch and a skip-counter
    // decrement — no hash, no staging, no ring traffic. That is what keeps
    // the producer at line rate under overload.
    if (sampler && !sampler->Admit()) {
      ++skipped;
      continue;
    }
    // One strong hash here pays for routing now and every sketch's bucket
    // derivations on the worker side. Item and hash are staged as two
    // parallel columns — the layout the worker-side SIMD kernels load with
    // unit stride.
    const std::uint64_t hash = PreHash(data[i]);
    const std::size_t s = ShardOfPrehash(hash, shards);
    staged_[s].items.push_back(data[i]);
    staged_[s].hashes.push_back(hash);
    if (staged_[s].size() >= options_.batch_items) FlushStaged(s);
  }
  if (skipped != 0) {
    items_sampled_out_ += skipped;
    PipelineMetrics::Get().sampled_items_skipped.Inc(skipped);
  }
}

void ShardedMonitor::Rotate() {
  obs::ScopedTimer timer(PipelineMetrics::Get().rotate_ns);
  // Staged items belong to the closing epoch: ship them under its tag (and
  // the weight they were admitted at).
  for (std::size_t s = 0; s < options_.shards; ++s) ShipStaged(s);
  ++epoch_;
  // One empty marker per shard carries the new epoch through the rings —
  // the in-band rotation signal. Workers retire their closed windows when
  // they reach it; the producer returns immediately (no join, no drain).
  for (std::size_t s = 0; s < options_.shards; ++s) {
    Batch marker;
    marker.epoch = epoch_;
    PushBatch(s, std::move(marker));
  }
}

void ShardedMonitor::Drain() {
  for (std::size_t s = 0; s < options_.shards; ++s) ShipStaged(s);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    const std::uint64_t target = batches_pushed_[s];
    std::size_t spins = 0;
    while (sync_[s]->batches_consumed.load(std::memory_order_acquire) <
           target) {
      BackoffPause(&spins);
    }
  }
}

Monitor& ShardedMonitor::ScratchReset() {
  if (!scratch_) {
    scratch_.emplace(config_, seed_);
  } else {
    scratch_->Reset();
  }
  return *scratch_;
}

Monitor& ShardedMonitor::GroupScratchReset(std::size_t group) {
  if (group_scratch_.size() < groups()) group_scratch_.resize(groups());
  if (!group_scratch_[group]) {
    group_scratch_[group].emplace(config_, seed_);
  } else {
    group_scratch_[group]->Reset();
  }
  return *group_scratch_[group];
}

MonitorReport ShardedMonitor::Report() {
  // Quiesce, then merge a snapshot: the shard monitors themselves are left
  // untouched, which is what makes Report repeatable and non-terminal.
  Drain();
  const std::size_t num_groups = groups();
  Monitor& scratch = ScratchReset();
  if (num_groups == 1) {
    // Flat fold — the two-level shape below with its intra-group copy
    // elided. Both visit shards in the same order, so the merged state is
    // identical (pinned by the 1-group-vs-N-group test).
    for (const auto& monitor : monitors_) scratch.Merge(*monitor);
    return scratch.Report();
  }
  // Level 1: fold each group's shard monitors into its group-local
  // scratch. The heavy reads (every counter of every shard sketch) stay on
  // the group's node when the caller runs pinned; only the compact merged
  // scratch crosses nodes below.
  for (std::size_t g = 0; g < num_groups; ++g) {
    Monitor& group_scratch = GroupScratchReset(g);
    for (std::size_t s = group_begin_[g]; s < group_begin_[g + 1]; ++s) {
      group_scratch.Merge(*monitors_[s]);
    }
  }
  // Level 2: fold the group scratches in group order.
  const std::uint64_t start_ns = obs::NowNs();
  for (std::size_t g = 0; g < num_groups; ++g) {
    scratch.Merge(*group_scratch_[g]);
  }
  PipelineMetrics::Get().cross_group_merge_ns.Observe(obs::NowNs() - start_ns);
  return scratch.Report();
}

std::optional<Monitor> ShardedMonitor::CollectWindow(std::uint64_t epoch) {
  SUBSTREAM_CHECK_MSG(epoch < epoch_,
                      "CollectWindow(%llu): epoch still open, Rotate() first",
                      static_cast<unsigned long long>(epoch));
  // After the drain every worker has consumed the rotation marker(s), so
  // each shard's mailbox holds exactly one window per rotated epoch that
  // was not already collected or Reset away.
  Drain();
  // All-or-nothing: verify presence in every shard before extracting, so a
  // double collection cannot half-consume the mailboxes.
  for (const auto& sync : sync_) {
    std::lock_guard<std::mutex> lock(sync->retired_mu);
    const bool found =
        std::any_of(sync->retired.begin(), sync->retired.end(),
                    [&](const auto& entry) { return entry.first == epoch; });
    if (!found) return std::nullopt;
  }
  // Level 1: extract and merge each group's windows in shard order, using
  // the group's first window as the accumulator (no scratch copies — the
  // extracted windows are consumed anyway).
  const std::size_t num_groups = groups();
  std::vector<Monitor> group_windows;
  group_windows.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    std::optional<Monitor> acc;
    for (std::size_t s = group_begin_[g]; s < group_begin_[g + 1]; ++s) {
      ShardSync& sync = *sync_[s];
      std::lock_guard<std::mutex> lock(sync.retired_mu);
      auto it = std::find_if(
          sync.retired.begin(), sync.retired.end(),
          [&](const auto& entry) { return entry.first == epoch; });
      if (!acc) {
        acc.emplace(std::move(it->second));
      } else {
        acc->Merge(it->second);
      }
      sync.retired.erase(it);
    }
    group_windows.push_back(std::move(*acc));
  }
  // Level 2: fold across groups in group order. Same total shard order as
  // the historical flat fold, so the merged window is byte-identical under
  // any group layout.
  Monitor merged = std::move(group_windows[0]);
  if (num_groups > 1) {
    const std::uint64_t start_ns = obs::NowNs();
    for (std::size_t g = 1; g < num_groups; ++g) {
      merged.Merge(group_windows[g]);
    }
    PipelineMetrics::Get().cross_group_merge_ns.Observe(obs::NowNs() -
                                                        start_ns);
  }
  return std::optional<Monitor>(std::move(merged));
}

void ShardedMonitor::Reset() {
  Drain();
  for (std::size_t s = 0; s < options_.shards; ++s) {
    // Post-drain the workers are idle and will touch their monitors again
    // only after the next ring push, which carries the needed
    // happens-before edge (release on head_, acquire in TryPop).
    monitors_[s]->Reset();
    sync_[s]->space_bytes.store(monitors_[s]->SpaceBytes(),
                                std::memory_order_relaxed);
    sync_[s]->items_consumed.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sync_[s]->retired_mu);
      sync_[s]->retired.clear();
    }
  }
  items_ingested_ = 0;
  producer_stalls_ = 0;
  stall_wait_ns_ = 0;
  buffers_recycled_ = 0;
  items_sampled_out_ = 0;
  if (sampler_) {
    // Back to exact counting with the data the rate history described.
    sampler_->Reset();
    staged_weight_ = 1;
    sampler_last_stalls_ = producer_stalls_;
    PipelineMetrics::Get().sampled_rate_ppm.Set(1000000);
  }
}

ShardedMonitorStats ShardedMonitor::Stats() const {
  ShardedMonitorStats stats;
  stats.items_ingested = items_ingested_;
  stats.epoch = epoch_;
  stats.producer_stalls = producer_stalls_;
  stats.stall_wait_ns = stall_wait_ns_;
  stats.buffers_recycled = buffers_recycled_;
  stats.items_sampled_out = items_sampled_out_;
  stats.sample_rate = sampler_ ? sampler_->rate() : 1.0;
  stats.groups = groups();
  stats.group_ring_hwm = group_ring_hwm_;
  for (std::size_t s = 0; s < options_.shards; ++s) {
    stats.items_consumed +=
        sync_[s]->items_consumed.load(std::memory_order_relaxed);
    stats.batches_consumed +=
        sync_[s]->batches_consumed.load(std::memory_order_relaxed);
    stats.batches_pushed += batches_pushed_[s];
    std::lock_guard<std::mutex> lock(sync_[s]->retired_mu);
    stats.windows_retired += sync_[s]->retired.size();
  }
  return stats;
}

std::size_t ShardedMonitor::SpaceBytes() const {
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < options_.shards; ++s) {
    // Workers publish their monitor's footprint after every batch; reading
    // the counter (instead of walking a Monitor under mutation) is what
    // makes this safe during ingest. Read the mailbox BEFORE the counter:
    // the worker publishes the fresh footprint before inserting a retiring
    // window, so this order can transiently undercount a rotating shard
    // but never count the same window in both places.
    {
      std::lock_guard<std::mutex> lock(sync_[s]->retired_mu);
      for (const auto& [epoch, monitor] : sync_[s]->retired) {
        bytes += monitor.SpaceBytes();
      }
    }
    bytes += sync_[s]->space_bytes.load(std::memory_order_relaxed);
  }
  return bytes;
}

}  // namespace substream
