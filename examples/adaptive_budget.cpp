/// Adaptive-rate sampling under a hard memory budget — the paper's
/// future-work question #2 ("suppose the algorithm can change the sampling
/// probability adaptively") in the form routers actually deploy it
/// (Estan et al., "Building a Better NetFlow" [21]).
///
/// A fixed-rate sampler must guess p in advance: too high and the sample
/// overflows memory on a heavy day; too low and a light day yields nothing.
/// The adaptive sampler starts at p=1 and halves its rate (re-thinning the
/// kept set) whenever the budget is hit, ending with the highest rate the
/// budget allows — and Horvitz–Thompson estimates stay unbiased throughout.
///
///   ./adaptive_budget [budget]

#include <cstdio>
#include <cstdlib>

#include "core/substream.h"

using namespace substream;

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4096;

  std::printf("adaptive sampling under a %zu-element budget\n\n", budget);
  std::printf("%-14s %12s %10s %8s %14s %12s\n", "day", "packets", "kept",
              "final p", "HT length est", "rel.err");

  // Three traffic days of very different volume; the same sampler
  // configuration handles all of them.
  const std::size_t volumes[] = {1u << 14, 1u << 18, 1u << 22};
  const char* names[] = {"light", "normal", "heavy"};
  for (int day = 0; day < 3; ++day) {
    ZipfGenerator gen(1 << 16, 1.1, static_cast<std::uint64_t>(7 + day));
    AdaptiveBernoulliSampler sampler(1.0, budget,
                                     static_cast<std::uint64_t>(50 + day));
    for (std::size_t i = 0; i < volumes[day]; ++i) sampler.Update(gen.Next());

    const double ht = HorvitzThompsonF1(sampler.Sample());
    std::printf("%-14s %12zu %10zu %8.4f %14.0f %11.1f%%\n", names[day],
                volumes[day], sampler.KeptCount(), sampler.current_rate(), ht,
                100.0 * RelativeError(ht, static_cast<double>(volumes[day])));
  }

  std::printf(
      "\nThe kept set is always an exact Bernoulli(current p) sample of the\n"
      "prefix (re-thinning), so every estimator in this library can consume\n"
      "it directly with p = final rate — fixed-rate analysis carries over,\n"
      "which is one answer to the paper's adaptivity question: adaptivity\n"
      "buys budget-fitting, not accuracy, under this schedule.\n");
  return 0;
}
