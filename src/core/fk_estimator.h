#ifndef SUBSTREAM_CORE_FK_ESTIMATOR_H_
#define SUBSTREAM_CORE_FK_ESTIMATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/health.h"
#include "sketch/level_sets.h"
#include "util/common.h"

/// \file fk_estimator.h
/// Algorithm 1 / Theorem 1: a one-pass (1+eps, delta) estimator of the
/// k-th frequency moment F_k(P) of the *original* stream, computed by
/// observing only the Bernoulli(p)-sampled stream L.
///
/// Pipeline: phi~_1 = F1(L)/p; for l = 2..k, estimate the l-wise collision
/// count C~_l(L) of the sampled stream (Indyk–Woodruff level sets, or exact
/// counting in reference modes), unbias by p^l, and apply Eq. (1):
///   phi~_l = C~_l(L) * l! / p^l + sum_{j<l} beta^l_j * phi~_j.
/// The answer is phi~_k. Space in sketch mode is O~(p^{-1} m^{1-2/k}).

namespace substream {

/// How the collision counts C_l(L) are obtained.
enum class CollisionBackend {
  /// Indyk–Woodruff level-set sketch: the paper's small-space algorithm.
  kSketch,
  /// Exact per-item counts on L, exact C_l(L): reference for tests; space
  /// O(F0(L)).
  kExactCollisions,
  /// Exact per-item counts on L, but C_l computed through the level-set
  /// discretization: isolates the (1+eps') rounding error of the level-set
  /// representation from sketch recovery error.
  kExactLevelSets,
};

/// Parameters of the F_k estimator.
struct FkParams {
  /// Moment order; k >= 2 (Theorem 1). k = 1 degenerates to counting.
  int k = 2;
  /// Target relative error.
  double epsilon = 0.1;
  /// Target failure probability.
  double delta = 0.05;
  /// Bernoulli sampling probability of the observed stream.
  double p = 1.0;
  /// Universe size hint m; sizes the sketch as m^{1-2/k}/p (Theorem 1).
  item_t universe = 1 << 16;
  /// Stream length hint (used only for the feasibility predicate).
  std::uint64_t n_hint = 0;
  CollisionBackend backend = CollisionBackend::kSketch;
  /// Multiplies the analytic sketch width; the paper's polylog factors are
  /// unspecified constants, exposed here as a knob.
  double space_multiplier = 8.0;
  /// Hard cap on CountSketch width per level (0 = uncapped).
  std::uint64_t max_width = 0;
  /// Physical cell width of the level-set CountSketch counters
  /// (cell_width.h); spill promotion keeps estimates unchanged. Ignored by
  /// the exact backends.
  CellWidth cell_width = CellWidth::k64;
};

/// One-pass F_k estimator over the sampled stream (Algorithm 1).
class FkEstimator {
 public:
  FkEstimator(const FkParams& params, std::uint64_t seed);

  ~FkEstimator();
  FkEstimator(FkEstimator&&) noexcept;
  FkEstimator& operator=(FkEstimator&&) noexcept;

  /// Feeds one element of the *sampled* stream L.
  void Update(item_t item);

  /// Feeds `n` contiguous elements of L.
  void UpdateBatch(const item_t* data, std::size_t n);

  /// Feeds `n` already-prehashed elements of L (the Monitor pipeline's
  /// columnar entry point; the level-set CountSketches consume the shared
  /// prehash directly).
  void UpdatePrehashed(const PrehashedItem* data, std::size_t n);

  /// SoA form: fans the columns to the configured backend.
  void UpdatePrehashed(PrehashedColumns cols, std::size_t n);

  /// Weighted (sampled-ingest) forms: each element carries `weight` units,
  /// the unbiased round(1/p) correction for Bernoulli(p)-admitted
  /// survivors. Equivalent to replaying each element `weight` times
  /// (level-set adds are linear); per-item depth routing keeps these
  /// per-item loops.
  void UpdatePrehashedWeighted(const PrehashedItem* data, std::size_t n,
                               count_t weight);
  void UpdatePrehashedWeighted(PrehashedColumns cols, std::size_t n,
                               count_t weight);

  /// Merges an estimator built with the same parameters and seed (the
  /// level-set backends merge under their own geometry/seed preconditions).
  void Merge(const FkEstimator& other);
  /// True when Merge(other) preconditions hold, checked all the way
  /// down through nested summaries; the Collector uses this to reject
  /// decoded-but-incompatible records instead of tripping the abort.
  bool MergeCompatibleWith(const FkEstimator& other) const;

  /// Decayed merge for windowed roll-ups: the backend's linear counters
  /// contribute scaled by `weight` (rounded to the counter domain), so the
  /// merged estimator approximates F_k of the decayed stream — including
  /// cross-window collision terms, by linearity of the underlying sketches.
  /// `weight` in (0, 1]; weight 1 delegates to Merge.
  void MergeScaled(const FkEstimator& other, double weight);

  /// Clears all state; parameters, seed and backend are kept.
  void Reset();

  /// phi~_k, the estimate of F_k(P).
  double Estimate() const;

  /// The whole ladder phi~_1 .. phi~_k (estimates of F_1(P) .. F_k(P)).
  std::vector<double> AllMoments() const;

  /// The raw collision estimates C~_l(L) for l = 2..k (diagnostics).
  std::vector<double> CollisionEstimates() const;

  /// Number of sampled-stream elements consumed, i.e. F1(L).
  count_t SampledLength() const { return sampled_length_; }

  /// The epsilon schedule eps_1..eps_k of Lemma 3 in use.
  const std::vector<double>& epsilon_schedule() const { return schedule_; }

  const FkParams& params() const { return params_; }

  std::size_t SpaceBytes() const;

  /// Appends one SummaryHealth entry for the active backend under `name`
  /// (sketch mode: per-depth CountSketch tables aggregated).
  void AppendHealth(const std::string& name,
                    std::vector<obs::SummaryHealth>* out) const;

  /// Feasibility threshold of Theorem 1: estimation is information-
  /// theoretically possible only when p = Omega~(min(m, n)^{-1/k}).
  static double MinSamplingProbability(int k, item_t m, std::uint64_t n);

  /// Analytic CountSketch width for the level-set structure:
  /// ceil(space_multiplier * m^{1-2/k} / (p * eps^2)).
  static std::uint64_t SketchWidth(const FkParams& params);

  /// Appends the versioned wire record: parameter header, then the active
  /// backend's nested record.
  void Serialize(serde::Writer& out) const;

  /// Decodes one record; std::nullopt on truncated or corrupted input.
  static std::optional<FkEstimator> Deserialize(serde::Reader& in);

 private:
  /// Deserialize-only: adopts params and recomputes the epsilon schedule
  /// without building a backend (the decoded nested record supplies it).
  struct DeserializeTag {};
  FkEstimator(DeserializeTag, const FkParams& params);

  FkParams params_;
  std::vector<double> schedule_;
  count_t sampled_length_ = 0;
  // Exactly one backend is active, per params_.backend.
  std::unique_ptr<IndykWoodruffEstimator> sketch_backend_;
  std::unique_ptr<ExactLevelSets> exact_backend_;

  double CollisionsOf(int l) const;
};

}  // namespace substream

#endif  // SUBSTREAM_CORE_FK_ESTIMATOR_H_
