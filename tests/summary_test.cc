#include <algorithm>

#include <gtest/gtest.h>

#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/exact_stats.h"
#include "stream/generators.h"

namespace substream {
namespace {

TEST(MisraGriesTest, NeverOverestimates) {
  ZipfGenerator g(1000, 1.2, 1);
  Stream s = Materialize(g, 50000);
  FrequencyTable exact = ExactStats(s);
  MisraGries mg(50);
  for (item_t a : s) mg.Update(a);
  for (const auto& [item, f] : exact.counts()) {
    EXPECT_LE(mg.Estimate(item), f) << "item " << item;
  }
}

TEST(MisraGriesTest, ErrorBoundedByF1OverK) {
  ZipfGenerator g(1000, 1.2, 2);
  Stream s = Materialize(g, 50000);
  FrequencyTable exact = ExactStats(s);
  const std::size_t k = 100;
  MisraGries mg(k);
  for (item_t a : s) mg.Update(a);
  const double bound = static_cast<double>(s.size()) / (k + 1);
  for (const auto& [item, f] : exact.counts()) {
    EXPECT_GE(static_cast<double>(mg.Estimate(item)),
              static_cast<double>(f) - bound)
        << "item " << item;
  }
  EXPECT_LE(static_cast<double>(mg.ErrorBound()), bound + 1.0);
}

TEST(MisraGriesTest, GuaranteedSurvivorsPresent) {
  PlantedHeavyHitterGenerator g(3, 0.6, 5000, 3);
  Stream s = Materialize(g, 60000);
  MisraGries mg(20);
  for (item_t a : s) mg.Update(a);
  // Items with f > F1/(k+1) must survive: planted items have ~20% >> 1/21.
  for (item_t id : g.HeavyIds()) {
    EXPECT_GT(mg.Estimate(id), 0u) << "planted item evicted " << id;
  }
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries mg(4);
  mg.Update(1, 100);
  mg.Update(2, 50);
  EXPECT_EQ(mg.Estimate(1), 100u);
  EXPECT_EQ(mg.Estimate(2), 50u);
  EXPECT_EQ(mg.TotalCount(), 150u);
}

TEST(MisraGriesTest, EvictionAndComeback) {
  MisraGries mg(2);
  mg.Update(1, 5);
  mg.Update(2, 5);
  mg.Update(3, 3);  // decrements everyone by 3, 3 itself gone
  EXPECT_EQ(mg.Estimate(1), 2u);
  EXPECT_EQ(mg.Estimate(2), 2u);
  EXPECT_EQ(mg.Estimate(3), 0u);
}

TEST(MisraGriesTest, CandidatesSorted) {
  ZipfGenerator g(100, 1.5, 4);
  Stream s = Materialize(g, 20000);
  MisraGries mg(16);
  for (item_t a : s) mg.Update(a);
  auto c = mg.Candidates(1.0);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i - 1].second, c[i].second);
  }
}

TEST(SpaceSavingTest, NeverUnderestimatesTrackedItems) {
  ZipfGenerator g(1000, 1.2, 5);
  Stream s = Materialize(g, 50000);
  FrequencyTable exact = ExactStats(s);
  SpaceSaving ss(100);
  for (item_t a : s) ss.Update(a);
  for (const auto& [item, est] : ss.Candidates(0.0)) {
    EXPECT_GE(est, exact.Frequency(item)) << "item " << item;
  }
}

TEST(SpaceSavingTest, OverestimateBoundedByF1OverK) {
  ZipfGenerator g(1000, 1.2, 6);
  Stream s = Materialize(g, 50000);
  FrequencyTable exact = ExactStats(s);
  const std::size_t k = 100;
  SpaceSaving ss(k);
  for (item_t a : s) ss.Update(a);
  const double bound = static_cast<double>(s.size()) / k;
  for (const auto& [item, est] : ss.Candidates(0.0)) {
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact.Frequency(item)) + bound)
        << "item " << item;
  }
}

TEST(SpaceSavingTest, HeavyItemsRetained) {
  PlantedHeavyHitterGenerator g(3, 0.6, 5000, 7);
  Stream s = Materialize(g, 60000);
  SpaceSaving ss(20);
  for (item_t a : s) ss.Update(a);
  for (item_t id : g.HeavyIds()) {
    EXPECT_GT(ss.Estimate(id), 0u) << "planted item evicted " << id;
  }
}

TEST(SpaceSavingTest, TableSizeBounded) {
  UniformGenerator g(10000, 8);
  Stream s = Materialize(g, 30000);
  SpaceSaving ss(64);
  for (item_t a : s) ss.Update(a);
  EXPECT_LE(ss.SpaceBytes(), 64u * (sizeof(item_t) + 2 * sizeof(count_t)));
}

TEST(SummaryComparisonTest, BothFindTheSameTopItems) {
  ZipfGenerator g(2000, 1.4, 9);
  Stream s = Materialize(g, 80000);
  FrequencyTable exact = ExactStats(s);
  MisraGries mg(64);
  SpaceSaving ss(64);
  for (item_t a : s) {
    mg.Update(a);
    ss.Update(a);
  }
  auto top = exact.TopK(5);
  for (const auto& [item, f] : top) {
    (void)f;
    EXPECT_GT(mg.Estimate(item), 0u);
    EXPECT_GT(ss.Estimate(item), 0u);
  }
}

}  // namespace
}  // namespace substream
