#ifndef SUBSTREAM_UTIL_SIMD_H_
#define SUBSTREAM_UTIL_SIMD_H_

#include <cstring>

/// \file simd.h
/// Instruction-set levels for the vectorized counter kernels
/// (sketch/counter_kernels.h) and the runtime feature detection that picks
/// between them.
///
/// The library always builds the portable scalar kernels; on x86-64 with a
/// GNU-compatible compiler it additionally builds AVX2 and AVX-512 variants
/// (per-function target attributes, so no global -mavx* flags and the
/// binary still runs on any x86-64). Selection happens once at runtime via
/// CPUID — see kernels::Dispatch() — and is overridable with the
/// SKETCH_SIMD environment variable (values: scalar, avx2, avx512) or at
/// build time with -DSKETCH_DISABLE_SIMD=ON, which compiles the scalar
/// kernels only.
///
/// Every vector kernel is bit-identical to its scalar reference: the hash
/// arithmetic is exact integer math, so serialized sketch state cannot
/// depend on the dispatch level (pinned by simd_equivalence_test).

/// Compile-time gate: vector kernel variants exist only on x86-64 under a
/// compiler supporting per-function target attributes and
/// __builtin_cpu_supports, and only when SKETCH_DISABLE_SIMD is off.
#if !defined(SKETCH_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SUBSTREAM_SIMD_X86 1
#else
#define SUBSTREAM_SIMD_X86 0
#endif

namespace substream {
namespace simd {

/// Dispatch levels, weakest first. kAvx512 requires AVX-512F + AVX-512DQ
/// (the 64-bit multiply and compare forms the kernels use) + AVX-512CD
/// (the lane-conflict detection the packed increment kernel uses).
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

inline const char* Name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

/// Parses a SKETCH_SIMD value; false (and *out untouched) on junk.
inline bool ParseIsa(const char* name, Isa* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *out = Isa::kAvx512;
    return true;
  }
  return false;
}

/// True when this build contains the vector variant for `isa` AND the
/// running CPU (and OS, via the compiler's XSAVE-aware probe) supports it.
inline bool Supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if SUBSTREAM_SIMD_X86
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512cd") != 0;
#else
    case Isa::kAvx2:
    case Isa::kAvx512:
      return false;
#endif
  }
  return false;
}

/// Strongest supported level on this host.
inline Isa Best() {
  if (Supported(Isa::kAvx512)) return Isa::kAvx512;
  if (Supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

}  // namespace simd
}  // namespace substream

#endif  // SUBSTREAM_UTIL_SIMD_H_
