#pragma once

// SketchHealth: per-summary introspection. Where the metrics registry
// answers "how fast / how often", a HealthReport answers "how full / how
// degraded": for each summary inside a Monitor it carries the geometry,
// the fill ratio of the counter table, the fraction of cells that spilled
// into wider overflow levels or saturated at their clamp value, and the
// derived (epsilon, delta) error bound the geometry buys.
//
// This header sits below the sketch layer (standard library plus the
// equally-low plan/accuracy.h formula header) so sketches and estimators
// can vend SummaryHealth entries without new dependency edges.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "plan/accuracy.h"

namespace substream {
namespace obs {

// Health of one summary (one sketch, one estimator backend). Fractions are
// in [0, 1]; epsilon/delta are 0 when no analytic bound applies (e.g.
// exact backends).
struct SummaryHealth {
  std::string name;        // e.g. "f0", "f2.level_sets", "hh.countmin"
  std::string kind;        // e.g. "countmin", "countsketch", "kmv", "exact"
  std::uint64_t depth = 0;         // rows (0 when not a depth*width table)
  std::uint64_t width = 0;         // buckets per row (or capacity k)
  std::uint64_t cells = 0;         // total base cells (or capacity)
  std::uint64_t nonzero_cells = 0;
  std::uint64_t spilled_cells = 0;    // cells promoted into overflow levels
  std::uint64_t saturated_cells = 0;  // cells pinned at their clamp value
  double fill_ratio = 0.0;            // nonzero_cells / cells
  double spill_fraction = 0.0;        // spilled_cells / cells
  double saturation_fraction = 0.0;   // saturated_cells / cells
  double epsilon = 0.0;               // derived error bound (0 = n/a)
  double delta = 0.0;                 // derived failure probability (0 = n/a)
  std::size_t space_bytes = 0;
};

struct HealthReport {
  std::uint64_t sampled_length = 0;  // weighted units the monitor absorbed
  double sampling_p = 1.0;           // substream sampling probability
  // Overload-graceful sampled ingest (core/overload.h). raw_updates counts
  // the elements actually applied (post-admission survivors); with sampled
  // mode off it equals sampled_length and the rate is exactly 1. The
  // widening is additive: each summary's promise under sampling is
  // (summary.epsilon + sampled_epsilon, summary.delta).
  std::uint64_t raw_updates = 0;
  double effective_sample_rate = 1.0;  // raw_updates / sampled_length
  double sampled_epsilon = 0.0;  // plan::SampledEpsilon widening (0 = exact)
  std::vector<SummaryHealth> summaries;
};

// Normalize the three ratio fields once counts are filled in.
inline void FinalizeRatios(SummaryHealth& h) {
  const double cells = h.cells > 0 ? static_cast<double>(h.cells) : 1.0;
  h.fill_ratio = static_cast<double>(h.nonzero_cells) / cells;
  h.spill_fraction = static_cast<double>(h.spilled_cells) / cells;
  h.saturation_fraction = static_cast<double>(h.saturated_cells) / cells;
}

// Standard analytic bounds. The formulas themselves live in
// plan/accuracy.h — the single source of truth shared with the geometry
// planner, so the bound Health() reports and the bound the planner sized
// for can never drift. These delegating aliases keep the historical obs::
// spellings (and the hand-computed pins in obs_health_test) intact.
inline double CountMinEpsilon(std::uint64_t width) {
  return plan::CountMinEpsilon(width);
}
inline double CountMinDelta(std::uint64_t depth) {
  return plan::CountMinDelta(depth);
}
inline double CountSketchEpsilon(std::uint64_t width) {
  return plan::CountSketchEpsilon(width);
}
inline double CountSketchDelta(std::uint64_t depth) {
  return plan::CountSketchDelta(depth);
}
inline double KmvEpsilon(std::uint64_t k) { return plan::KmvEpsilon(k); }
inline double HllEpsilon(int precision) {
  return plan::HllEpsilon(precision);
}

}  // namespace obs
}  // namespace substream
