#ifndef SUBSTREAM_SKETCH_CELL_WIDTH_H_
#define SUBSTREAM_SKETCH_CELL_WIDTH_H_

#include <cstdint>

/// \file cell_width.h
/// Storage-policy knobs for the shared CounterTable (counter_table.h),
/// split into their own include-light header so core-layer configuration
/// structs (MonitorConfig, FkParams, LevelSetParams, HeavyHitterParams)
/// can carry a cell-width choice without pulling in the sketch layer.
///
/// Most sketch deployments never need 64-bit headroom per counter: a
/// 32-bit (or narrower) cell quadruples (or more) the number of counters
/// per cache line and per vector register. The CounterTable keeps the
/// 64-bit *logical* interface regardless of the physical width; narrow
/// cells that would overflow either spill into a lazily-allocated
/// next-wider overflow level (estimates stay bit-identical to the 64-bit
/// reference) or saturate, per OverflowPolicy.

namespace substream {

/// Physical bits per counter cell of a CounterTable's base level.
/// Values are wire-stable (serialized as a u8): never reorder.
enum class CellWidth : std::uint8_t {
  k8 = 0,
  k16 = 1,
  k32 = 2,
  k64 = 3,
};

/// Bits of a cell at `width`.
inline constexpr int CellBits(CellWidth width) {
  return 8 << static_cast<int>(width);
}

/// Bytes of a cell at `width`.
inline constexpr std::size_t CellBytes(CellWidth width) {
  return static_cast<std::size_t>(1) << static_cast<int>(width);
}

/// What happens when a narrow cell can no longer represent its counter.
/// Values are wire-stable (serialized inside the table flags byte).
enum class OverflowPolicy : std::uint8_t {
  /// The cell's value spills into the next-wider overflow level (allocated
  /// lazily on first spill); logical values — and therefore estimates —
  /// stay bit-identical to a 64-bit-cell table fed the same stream.
  kSpill = 0,
  /// The cell clamps at its representable extreme. No overflow levels are
  /// ever allocated; heavy-tail counters are clipped. For callers that
  /// accept clipped tails in exchange for a hard memory bound.
  kSaturate = 1,
};

/// Per-table storage policy. Defaults reproduce the historical behaviour
/// exactly: 64-bit cells, FastRange64 bucket reduction.
struct CounterTableOptions {
  CellWidth cell_width = CellWidth::k64;
  OverflowPolicy overflow = OverflowPolicy::kSpill;
  /// Round the requested width up to a power of two and reduce buckets
  /// with a mask instead of FastRange64 — one multiply-high saved per
  /// derivation. Mask placement differs from fast-range placement even at
  /// equal widths, so this flag participates in merge compatibility and
  /// the wire header.
  bool pow2_width = false;
};

}  // namespace substream

#endif  // SUBSTREAM_SKETCH_CELL_WIDTH_H_
