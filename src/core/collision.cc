#include "core/collision.h"

#include <cmath>

#include "util/math.h"

namespace substream {

double BetaCoefficient(int l, int j) {
  SUBSTREAM_CHECK(l >= 2 && l <= 20);
  SUBSTREAM_CHECK(j >= 1 && j < l);
  // Eq. (1) rearranges sum_i f_i^(l) = sum_j s(l, j) F_j with s(l, l) = 1:
  //   F_l = l! C_l - sum_{j<l} s(l, j) F_j, hence beta^l_j = -s(l, j).
  return -static_cast<double>(StirlingFirstSigned(l, j));
}

double BetaAbsSum(int l) {
  SUBSTREAM_CHECK(l >= 2 && l <= 20);
  double sum = 0.0;
  for (int j = 1; j < l; ++j) sum += std::abs(BetaCoefficient(l, j));
  return sum;
}

double MomentFromCollisions(int l, double collisions,
                            const std::vector<double>& lower_moments) {
  SUBSTREAM_CHECK(l >= 1);
  if (l == 1) return collisions;  // C_1 = F_1
  SUBSTREAM_CHECK(static_cast<int>(lower_moments.size()) >= l - 1);
  double factorial = 1.0;
  for (int i = 2; i <= l; ++i) factorial *= i;
  KahanSum sum;
  sum.Add(factorial * collisions);
  for (int j = 1; j < l; ++j) {
    sum.Add(BetaCoefficient(l, j) * lower_moments[static_cast<std::size_t>(j - 1)]);
  }
  return sum.Value();
}

double CollisionsFromFrequencies(const std::vector<count_t>& frequencies,
                                 int l) {
  SUBSTREAM_CHECK(l >= 1);
  KahanSum sum;
  for (count_t f : frequencies) {
    sum.Add(BinomialDouble(static_cast<double>(f), l));
  }
  return sum.Value();
}

double MomentFromFrequencies(const std::vector<count_t>& frequencies, int l) {
  SUBSTREAM_CHECK(l >= 0);
  KahanSum sum;
  for (count_t f : frequencies) {
    sum.Add(std::pow(static_cast<double>(f), l));
  }
  return sum.Value();
}

std::vector<double> EpsilonSchedule(int k, double epsilon) {
  SUBSTREAM_CHECK(k >= 1);
  SUBSTREAM_CHECK(epsilon > 0.0);
  std::vector<double> schedule(static_cast<std::size_t>(k));
  schedule[static_cast<std::size_t>(k - 1)] = epsilon;
  for (int l = k; l >= 2; --l) {
    schedule[static_cast<std::size_t>(l - 2)] =
        schedule[static_cast<std::size_t>(l - 1)] / (BetaAbsSum(l) + 1.0);
  }
  return schedule;
}

double ExpectedSampledCollisions(double collisions_original, double p, int l) {
  SUBSTREAM_CHECK(p > 0.0 && p <= 1.0);
  return collisions_original * std::pow(p, l);
}

double UnbiasedOriginalCollisions(double collisions_sampled, double p, int l) {
  SUBSTREAM_CHECK(p > 0.0 && p <= 1.0);
  return collisions_sampled / std::pow(p, l);
}

}  // namespace substream
