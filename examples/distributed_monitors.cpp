/// Distributed monitoring: several routers, one collector.
///
/// Each router Bernoulli-samples its local traffic at rate p and maintains
/// small mergeable sketches (KMV for distinct flows, CountSketch for F2,
/// CountMin for flow counts). The collector merges the sketches and answers
/// about the UNION of the original streams — without any router shipping
/// raw samples. This is the distributed-streams setting of the related
/// work the paper builds on [16, 36], composed with its sampled-stream
/// estimators.
///
///   ./distributed_monitors [p] [routers]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/substream.h"

using namespace substream;

namespace {

struct RouterSketches {
  KmvSketch distinct;
  CountSketch f2;
  CountMinSketch counts;
  count_t sampled_packets = 0;

  explicit RouterSketches(std::uint64_t shared_seed)
      : distinct(2048, DeriveSeed(shared_seed, 1)),
        f2(7, 4096, DeriveSeed(shared_seed, 2)),
        counts(5, 1 << 14, false, DeriveSeed(shared_seed, 3)) {}

  void Consume(const Stream& packets, double p, std::uint64_t sampler_seed) {
    BernoulliSampler sampler(p, sampler_seed);
    for (item_t flow : packets) {
      if (!sampler.Keep()) continue;
      distinct.Update(flow);
      f2.Update(flow);
      counts.Update(flow);
      ++sampled_packets;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.1;
  const int routers = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t packets_per_router = 1 << 19;
  // All routers share sketch seeds (mandatory for mergeability) but have
  // independent sampling randomness.
  const std::uint64_t kSketchSeed = 42;

  std::printf("distributed sampled-stream monitoring: %d routers, p=%.2f,"
              " %zu packets each\n\n", routers, p, packets_per_router);

  FrequencyTable exact_union;
  std::vector<RouterSketches> fleet;
  for (int r = 0; r < routers; ++r) {
    // Router r sees its own flow population with some overlap (shared flows
    // 1..20000 plus a router-private range).
    ZipfGenerator gen(20000 + 5000 * static_cast<item_t>(r), 1.1,
                      static_cast<std::uint64_t>(100 + r));
    Stream local = Materialize(gen, packets_per_router);
    exact_union.AddStream(local);
    fleet.emplace_back(kSketchSeed);
    fleet.back().Consume(local, p, static_cast<std::uint64_t>(500 + r));
    std::printf("  router %d: sampled %llu packets, local sketch %zu KB\n", r,
                static_cast<unsigned long long>(fleet.back().sampled_packets),
                (fleet.back().distinct.SpaceBytes() +
                 fleet.back().f2.SpaceBytes() +
                 fleet.back().counts.SpaceBytes()) / 1024);
  }

  // Collector: merge everything into router 0's sketches.
  RouterSketches& merged = fleet.front();
  count_t total_sampled = merged.sampled_packets;
  for (int r = 1; r < routers; ++r) {
    merged.distinct.Merge(fleet[static_cast<std::size_t>(r)].distinct);
    merged.f2.Merge(fleet[static_cast<std::size_t>(r)].f2);
    merged.counts.Merge(fleet[static_cast<std::size_t>(r)].counts);
    total_sampled += fleet[static_cast<std::size_t>(r)].sampled_packets;
  }

  // Estimates about the union of original streams.
  const double f0_est = merged.distinct.Estimate() / std::sqrt(p);
  const double f1_sampled = static_cast<double>(total_sampled);
  const double f2_est =
      (merged.f2.EstimateF2() - (1.0 - p) * f1_sampled) / (p * p);

  std::printf("\ncollector estimates (union of all routers):\n");
  std::printf("  distinct flows: %12.0f (exact %llu, factor bound %.1f)\n",
              f0_est, static_cast<unsigned long long>(exact_union.F0()),
              4.0 / std::sqrt(p));
  std::printf("  self-join size: %12.4g (exact %.4g, rel.err %.1f%%)\n",
              f2_est, exact_union.Fk(2),
              100.0 * RelativeError(f2_est, exact_union.Fk(2)));

  // Global heavy flows from the merged CountMin.
  std::printf("  top shared flows (merged CountMin, scaled 1/p):\n");
  for (item_t flow = 1; flow <= 3; ++flow) {
    std::printf("    flow %llu: est %10.0f  exact %10llu\n",
                static_cast<unsigned long long>(flow),
                static_cast<double>(merged.counts.Estimate(flow)) / p,
                static_cast<unsigned long long>(exact_union.Frequency(flow)));
  }
  return 0;
}
