#ifndef SUBSTREAM_CORE_SUBSTREAM_H_
#define SUBSTREAM_CORE_SUBSTREAM_H_

/// \file substream.h
/// Umbrella header for the substream library: everything needed to estimate
/// statistics of an original stream P by observing only a Bernoulli(p)
/// sampled stream L, per McGregor, Pavan, Tirthapura, Woodruff,
/// "Space-Efficient Estimation of Statistics over Sub-Sampled Streams".

#include "core/baselines.h"          // IWYU pragma: export
#include "core/collision.h"          // IWYU pragma: export
#include "core/entropy_estimator.h"  // IWYU pragma: export
#include "core/f0_estimator.h"       // IWYU pragma: export
#include "core/fk_estimator.h"       // IWYU pragma: export
#include "core/heavy_hitters.h"      // IWYU pragma: export
#include "core/monitor.h"            // IWYU pragma: export
#include "core/sharded_monitor.h"    // IWYU pragma: export
#include "core/windowed_monitor.h"   // IWYU pragma: export
#include "sketch/ams_f2.h"           // IWYU pragma: export
#include "sketch/sketch.h"           // IWYU pragma: export
#include "sketch/countmin.h"         // IWYU pragma: export
#include "sketch/countsketch.h"      // IWYU pragma: export
#include "sketch/entropy_sketch.h"   // IWYU pragma: export
#include "sketch/hyperloglog.h"      // IWYU pragma: export
#include "sketch/kmv.h"              // IWYU pragma: export
#include "sketch/level_sets.h"       // IWYU pragma: export
#include "sketch/misra_gries.h"      // IWYU pragma: export
#include "sketch/space_saving.h"     // IWYU pragma: export
#include "stream/exact_stats.h"      // IWYU pragma: export
#include "stream/generators.h"       // IWYU pragma: export
#include "stream/adaptive_sampler.h"  // IWYU pragma: export
#include "stream/priority_sampling.h"  // IWYU pragma: export
#include "stream/reservoir.h"        // IWYU pragma: export
#include "stream/sample_and_hold.h"  // IWYU pragma: export
#include "stream/samplers.h"         // IWYU pragma: export
#include "stream/stream.h"           // IWYU pragma: export
#include "util/hash.h"               // IWYU pragma: export
#include "util/math.h"               // IWYU pragma: export
#include "util/random.h"             // IWYU pragma: export
#include "util/stats.h"              // IWYU pragma: export

#endif  // SUBSTREAM_CORE_SUBSTREAM_H_
