#include "core/overload.h"

#include <cmath>

namespace substream {

SampleController::SampleController(const SampleControllerOptions& options,
                                   std::uint64_t seed)
    : options_(options), rng_(seed) {
  SUBSTREAM_CHECK_MSG(options_.min_rate > 0.0 && options_.min_rate <= 1.0,
                      "SampleController min_rate must be in (0, 1]");
  SUBSTREAM_CHECK_MSG(
      options_.disengage_occupancy < options_.engage_occupancy,
      "SampleController watermarks must leave a hysteresis gap "
      "(disengage < engage)");
  SUBSTREAM_CHECK_MSG(options_.calm_observations > 0,
                      "SampleController calm_observations must be >= 1");
  // Clamp the floor to the nearest power-of-two level so the correction
  // weight stays an exact integer. min_rate = 1/64 -> max_level = 6.
  max_level_ = static_cast<std::uint32_t>(
      std::lround(std::log2(1.0 / options_.min_rate)));
  SUBSTREAM_CHECK_MSG(max_level_ < 63, "SampleController min_rate underflow");
}

bool SampleController::Observe(double occupancy, std::uint64_t stall_delta) {
  const bool pressured =
      occupancy >= options_.engage_occupancy || stall_delta > 0;
  if (pressured) {
    calm_streak_ = 0;
    if (level_ < max_level_) {
      SetLevel(level_ + 1);
      return true;
    }
    return false;
  }
  if (occupancy > options_.disengage_occupancy) {
    // Hysteresis band: neither pressure nor calm. The streak restarts so a
    // hovering ring cannot ratchet the rate back up.
    calm_streak_ = 0;
    return false;
  }
  if (level_ == 0) return false;
  if (++calm_streak_ < options_.calm_observations) return false;
  calm_streak_ = 0;
  SetLevel(level_ - 1);
  return true;
}

void SampleController::SetLevel(std::uint32_t level) {
  level_ = level;
  rate_ = std::exp2(-static_cast<double>(level_));
  // The pending skip was drawn at the old rate; redraw lazily at the new one
  // so admission stays exactly Bernoulli(rate) from the next element on.
  skip_ = level_ == 0 ? 0 : rng_.NextGeometric(rate_);
}

void SampleController::Reset() {
  level_ = 0;
  rate_ = 1.0;
  skip_ = 0;
  calm_streak_ = 0;
  admitted_ = 0;
  skipped_ = 0;
}

}  // namespace substream
