#include "core/f0_estimator.h"

#include <cmath>
#include <unordered_set>

#include "util/hash.h"

namespace substream {

struct F0Estimator::ExactSet {
  std::unordered_set<item_t> items;
};

F0Estimator::F0Estimator(const F0Params& params, std::uint64_t seed)
    : params_(params) {
  SUBSTREAM_CHECK_MSG(params.p > 0.0 && params.p <= 1.0,
                      "sampling probability p=%f", params.p);
  switch (params.backend) {
    case F0Backend::kKmv:
      kmv_ = std::make_unique<KmvSketch>(params.kmv_k, DeriveSeed(seed, 1));
      break;
    case F0Backend::kHyperLogLog:
      hll_ = std::make_unique<HyperLogLog>(params.hll_precision,
                                           DeriveSeed(seed, 2));
      break;
    case F0Backend::kExact:
      exact_ = std::make_unique<ExactSet>();
      break;
  }
}

F0Estimator::~F0Estimator() = default;
F0Estimator::F0Estimator(F0Estimator&&) noexcept = default;
F0Estimator& F0Estimator::operator=(F0Estimator&&) noexcept = default;

void F0Estimator::Update(item_t item) {
  ++sampled_length_;
  if (kmv_) {
    kmv_->Update(item);
  } else if (hll_) {
    hll_->Update(item);
  } else {
    exact_->items.insert(item);
  }
}

void F0Estimator::UpdateBatch(const item_t* data, std::size_t n) {
  sampled_length_ += n;
  if (kmv_) {
    kmv_->UpdateBatch(data, n);
  } else if (hll_) {
    hll_->UpdateBatch(data, n);
  } else {
    exact_->items.insert(data, data + n);
  }
}

void F0Estimator::Merge(const F0Estimator& other) {
  SUBSTREAM_CHECK_MSG(params_.backend == other.params_.backend &&
                          params_.p == other.params_.p,
                      "merging F0 estimators with different configurations");
  sampled_length_ += other.sampled_length_;
  if (kmv_) {
    kmv_->Merge(*other.kmv_);
  } else if (hll_) {
    hll_->Merge(*other.hll_);
  } else {
    exact_->items.insert(other.exact_->items.begin(),
                         other.exact_->items.end());
  }
}

void F0Estimator::Reset() {
  sampled_length_ = 0;
  if (kmv_) {
    kmv_->Reset();
  } else if (hll_) {
    hll_->Reset();
  } else {
    exact_->items.clear();
  }
}

double F0Estimator::EstimateSampledDistinct() const {
  if (kmv_) return kmv_->Estimate();
  if (hll_) return hll_->Estimate();
  return static_cast<double>(exact_->items.size());
}

double F0Estimator::Estimate() const {
  return EstimateSampledDistinct() / std::sqrt(params_.p);
}

double F0Estimator::ErrorFactorBound() const {
  return 4.0 / std::sqrt(params_.p);
}

std::size_t F0Estimator::SpaceBytes() const {
  if (kmv_) return kmv_->SpaceBytes();
  if (hll_) return hll_->SpaceBytes();
  return exact_->items.size() * sizeof(item_t);
}

}  // namespace substream
