#include "util/random.h"

#include <cmath>

#include "util/hash.h"

namespace substream {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion of the seed into 256 bits of state; guaranteed
  // not all-zero because Mix64 is a bijection applied to distinct inputs.
  for (int i = 0; i < 4; ++i) {
    state_[i] = Mix64(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
  }
}

void Rng::RestoreState(const std::array<std::uint64_t, 4>& state) {
  SUBSTREAM_CHECK(state[0] != 0 || state[1] != 0 || state[2] != 0 ||
                  state[3] != 0);
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
  has_cached_gaussian_ = false;
  cached_gaussian_ = 0.0;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextUnit() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SUBSTREAM_CHECK(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(Next()) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextUnit() < p;
}

std::uint64_t Rng::NextGeometric(double p) {
  SUBSTREAM_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = NextUnit();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::NextBinomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  bool flipped = false;
  if (p > 0.5) {
    p = 1.0 - p;
    flipped = true;
  }
  const double mean = static_cast<double>(n) * p;
  std::uint64_t x;
  if (mean < 30.0) {
    // Waiting-time (geometric skips) method: exact and O(np) expected.
    std::uint64_t count = 0;
    std::uint64_t pos = 0;
    while (true) {
      pos += NextGeometric(p) + 1;
      if (pos > n) break;
      ++count;
    }
    x = count;
  } else {
    // Normal approximation with continuity correction, clamped; adequate for
    // workload generation where np is large (error exponentially small in np).
    const double sd = std::sqrt(mean * (1.0 - p));
    double sample = std::round(mean + sd * NextGaussian());
    if (sample < 0.0) sample = 0.0;
    if (sample > static_cast<double>(n)) sample = static_cast<double>(n);
    x = static_cast<std::uint64_t>(sample);
  }
  return flipped ? n - x : x;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextUnit();
  double u2 = NextUnit();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.141592653589793238462643383279502884 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

ZipfDistribution::ZipfDistribution(std::uint64_t universe, double skew)
    : universe_(universe), skew_(skew) {
  SUBSTREAM_CHECK(universe >= 1);
  SUBSTREAM_CHECK(skew >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_universe_ = H(static_cast<double>(universe) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -skew));
}

double ZipfDistribution::H(double x) const {
  // Integral of x^{-skew}: (x^{1-skew} - 1) / (1 - skew); log(x) at skew = 1.
  if (std::abs(skew_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - skew_) - 1.0) / (1.0 - skew_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(skew_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - skew_), 1.0 / (1.0 - skew_));
}

std::uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (universe_ == 1) return 1;
  while (true) {
    const double u = h_universe_ + rng.NextUnit() * (h_x1_ - h_universe_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > universe_) k = universe_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -skew_)) {
      return k;
    }
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  SUBSTREAM_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    SUBSTREAM_CHECK(w >= 0.0);
    total += w;
  }
  SUBSTREAM_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::Sample(Rng& rng) const {
  const std::size_t column = rng.NextBounded(prob_.size());
  return rng.NextUnit() < prob_[column] ? column : alias_[column];
}

}  // namespace substream
