#ifndef SUBSTREAM_SKETCH_COUNTER_KERNELS_H_
#define SUBSTREAM_SKETCH_COUNTER_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"
#include "util/simd.h"

/// \file counter_kernels.h
/// Runtime-dispatched SIMD kernels for the counter-array hot loops.
///
/// The one-hash-per-item pipeline (PR 3) left two scalar inner loops as the
/// remaining ingest cost: the remix + fast-range bucket derivation of
/// CounterTable::AddPrehashed, and the per-row 4-wise polynomial sign
/// evaluation of CountSketch. Both are pure integer math over a contiguous
/// prehashed column — exactly the shape a vector unit wants — so this layer
/// provides AVX2 and AVX-512 implementations selected once at runtime
/// (kernels::Dispatch), with the scalar loop kept as the portable reference.
///
/// Kernels compute *derivations* (bucket indices, signs) into small
/// stack-resident buffers; the 64-bit counter increments stay scalar,
/// reading those buffers in stream order. That keeps those kernels
/// gather/scatter-free and conflict-safe: two lanes hashing to the same
/// bucket can never lose an increment, and order-sensitive state (the
/// CountSketch row norms) sees exactly the scalar update sequence. For
/// *narrow* cells (8/16/32-bit, PR 6) the AVX-512 level additionally packs
/// the unit-increment replay itself: cells are gathered as 32-bit words,
/// incremented in-register, and scattered back — guarded by
/// _mm512_conflict_epi64 word-conflict detection plus a stop-pattern check,
/// with any conflicted or saturated 8-lane group replayed scalar in stream
/// order. All kernel arithmetic is exact integer math and spills only ever
/// happen in stream order, so every dispatch level yields bit-identical
/// sketch state (simd_equivalence_test pins serialized-byte equality per
/// level).
///
/// Only the BATCHED ingest paths dispatch here. Per-item operations keep
/// their scalar loops at every level: a per-item panel (lanes across rows)
/// must return its lanes through a wide store the caller immediately
/// re-reads narrowly — one failed store-to-load forward per row, measured
/// as a 4x per-item CountSketch regression on AVX2 at depth 5 — and at
/// real depths (4-7) the vectors barely fill anyway. Micro-block row
/// passes amortize the same stores across 64 items and double-buffer past
/// the forwarding window.
///
/// Dispatch level resolution, in priority order:
///  1. kernels::SetActive(isa) — tests and benches flip levels in-process.
///  2. SKETCH_SIMD environment variable (scalar | avx2 | avx512), checked
///     on first use; an unsupported or unparsable value falls through with
///     a one-line stderr warning.
///  3. CPUID: the strongest level the host supports.

namespace substream {
namespace kernels {

/// Items per hash→replay micro-block of the vector ingest paths. Small
/// enough that one micro-block's SIMD derivations plus the next one's
/// scalar increment replay fit the out-of-order window together, so the
/// vector units compute block k+1's indices while the load/store units
/// drain block k — the phases overlap instead of serializing (a 1024-item
/// phase pair is far larger than any reorder buffer).
inline constexpr std::size_t kMicroBlockItems = 64;

/// Function-pointer table for one dispatch level. All functions are pure
/// (no hidden state) and safe to call concurrently.
struct KernelTable {
  simd::Isa isa;

  /// Row pass over a prehashed block: out_idx[i] =
  /// FastRange64(RemixHash(items[i].hash, row_seed), width).
  void (*bucket_row)(const PrehashedItem* items, std::size_t n,
                     std::uint64_t row_seed, std::uint64_t width,
                     std::uint64_t* out_idx);

  /// 4-wise-independent sign row pass: out_sign[i] in {-1, +1} equals
  /// PolynomialHash{coeffs}.Sign(items[i].item) for a degree-3 polynomial
  /// over GF(2^61 - 1) with coefficients c[0..3] (constant term first, as
  /// PolynomialHash stores them).
  void (*sign_row4)(const PrehashedItem* items, std::size_t n,
                    const std::uint64_t c[4], std::int64_t* out_sign);

  /// Power-of-two-width row pass: out_idx[i] =
  /// RemixHash(items[i].hash, row_seed) & mask. The mask reduction skips
  /// FastRange64's multiply-high; its bucket placement differs from
  /// fast-range placement even at equal widths, so tables pick exactly one.
  void (*bucket_row_mask)(const PrehashedItem* items, std::size_t n,
                          std::uint64_t row_seed, std::uint64_t mask,
                          std::uint64_t* out_idx);

  /// SoA forms of the three row passes above: identical math, but the
  /// inputs arrive as bare columns (PrehashedColumns members), so the
  /// vector levels take one unit-stride load per lane set instead of the
  /// two-loads-plus-shuffle deinterleave the AoS layout forces. Bucket
  /// passes read the hash column; the sign pass reads the item column.
  void (*bucket_row_cols)(const std::uint64_t* hashes, std::size_t n,
                          std::uint64_t row_seed, std::uint64_t width,
                          std::uint64_t* out_idx);
  void (*sign_row4_cols)(const std::uint64_t* items, std::size_t n,
                         const std::uint64_t c[4], std::int64_t* out_sign);
  void (*bucket_row_mask_cols)(const std::uint64_t* hashes, std::size_t n,
                               std::uint64_t row_seed, std::uint64_t mask,
                               std::uint64_t* out_idx);

  /// Cold-path callback of the packed increment kernel: invoked, in stream
  /// order, for each increment whose cell sits at the stop pattern.
  using IncColdFn = void (*)(void* ctx, std::uint64_t flat_index);

  /// Lane-packed unit-increment replay over a narrow-cell level. `cells` is
  /// the level's storage viewed as little-endian 32-bit words holding
  /// `1 << log2_cpw` cells of `32 >> log2_cpw` bits each; increment i
  /// targets flat cell index `row_base + buckets[i]`. A cell whose field
  /// equals `stop_field` is not incremented: `cold(ctx, flat)` runs instead
  /// (spill promotion or saturation, per the caller). Effects are exactly
  /// those of the in-stream-order scalar replay — groups with intra-group
  /// word conflicts or stop cells fall back to scalar order internally.
  /// Null on dispatch levels without gather/scatter+conflict support
  /// (scalar, AVX2); callers replay scalar when null.
  void (*inc_row_packed)(void* cells, std::uint64_t row_base,
                         const std::uint64_t* buckets, std::size_t n,
                         unsigned log2_cpw, std::uint32_t cell_mask,
                         std::uint32_t stop_field, IncColdFn cold, void* ctx);
};

/// The active kernel table. First call resolves the level (env override,
/// then CPUID); subsequent calls are one atomic load.
const KernelTable& Dispatch();

/// Level of the active table.
simd::Isa ActiveIsa();

/// Forces a dispatch level; returns false (and leaves dispatch untouched)
/// when this build or host cannot run it. Test/bench hook — call it only
/// while no ingest is in flight.
bool SetActive(simd::Isa isa);

/// Supported levels on this host, weakest first (always contains scalar).
std::vector<simd::Isa> AvailableIsas();

/// The double-buffered micro-block software pipeline shared by the vector
/// ingest paths (CounterTable::AddPrehashed, CountSketch::UpdatePrehashed).
/// `derive(p, mm, slot)` fills buffer slot 0/1 with the kernel derivations
/// for `mm` items starting at `p`; `replay(slot, mm)` consumes it. The
/// derivation of micro-block j+1 is issued BEFORE the replay of micro-block
/// j, so the vector units compute ahead while the load/store units drain —
/// and the replay only ever reads a buffer whose wide stores were issued a
/// full micro-block earlier, past the store-to-load forwarding window.
/// Callers own the two buffer slots; per-item order within replay is the
/// stream order, so counters stay bit-identical to the fused scalar loop.
/// `block` is any cursor supporting `block + offset` — a `PrehashedItem*`
/// (AoS), a raw `std::uint64_t*` column, or a `std::size_t` base offset
/// when the derive stage reads several parallel columns at once.
template <typename Cursor, typename Derive, typename Replay>
inline void MicroBlockPipeline(Cursor block, std::size_t m,
                               Derive&& derive, Replay&& replay) {
  std::size_t cur_m = m < kMicroBlockItems ? m : kMicroBlockItems;
  if (cur_m == 0) return;
  derive(block, cur_m, 0);
  int t = 0;
  for (std::size_t j = 0; j < m;) {
    const std::size_t next = j + cur_m;
    std::size_t next_m = 0;
    if (next < m) {
      next_m = m - next < kMicroBlockItems ? m - next : kMicroBlockItems;
      derive(block + next, next_m, t ^ 1);
    }
    replay(t, cur_m);
    j = next;
    cur_m = next_m;
    t ^= 1;
  }
}

}  // namespace kernels
}  // namespace substream

#endif  // SUBSTREAM_SKETCH_COUNTER_KERNELS_H_
