/// Telemetry-under-load suite, targeted by the TSan CI leg: the process
/// registry is scraped (Snapshot + both exposition writers) from a
/// separate thread while a ShardedMonitor pipeline ingests and rotates.
/// Pins (a) data-race freedom of the striped metric slots against live
/// workers, (b) merge exactness once the pipeline quiesces (registry
/// counters must agree with the pipeline's own accounting), and (c)
/// monotonicity of counter reads across concurrent snapshots.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_monitor.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "pipeline_test_util.h"

namespace substream {
namespace {

using pipeline_test::kSeed;
using pipeline_test::TestConfig;

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::uint64_t HistogramCount(const obs::MetricsSnapshot& snap,
                             const std::string& name) {
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name == name) return h.count;
  }
  return 0;
}

TEST(ObsPipelineTest, RegistryAgreesWithPipelineAccountingAfterQuiesce) {
  obs::MetricsRegistry::Global().ResetAllForTest();
  const Stream sampled = pipeline_test::SampledStream(80000, /*gen_seed=*/11);

  ShardedMonitorStats stats;
  {
    ShardedMonitorOptions options;
    options.shards = 3;
    options.batch_items = 1024;
    ShardedMonitor sharded(TestConfig(), kSeed, options);
    sharded.Ingest(sampled);
    sharded.Rotate();
    const auto window = sharded.CollectWindow(0);  // flush + drain barrier
    ASSERT_TRUE(window.has_value());
    sharded.Ingest(sampled.data(), sampled.size() / 2);
    stats = sharded.Stats();
  }  // destructor drains and joins: every accounted item is consumed

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  if (obs::kTelemetryEnabled) {
    // Quiesced: the registry's striped counters merge to the exact item
    // count the pipeline accounted.
    EXPECT_EQ(CounterValue(snap, "substream_sharded_items_consumed_total"),
              sampled.size() + sampled.size() / 2);
    // The consume histogram and the batch counter increment together.
    EXPECT_EQ(HistogramCount(snap, "substream_sharded_batch_consume_duration_ns"),
              CounterValue(snap, "substream_sharded_batches_consumed_total"));
    EXPECT_GE(HistogramCount(snap, "substream_sharded_rotate_duration_ns"), 1u);
    // Registry mirror is fed from the same increment site as the stats
    // field; the destructor's final flush can only add to it after the
    // Stats() capture above.
    EXPECT_GE(CounterValue(snap, "substream_sharded_buffers_recycled_total"),
              stats.buffers_recycled);
  } else {
    EXPECT_EQ(CounterValue(snap, "substream_sharded_items_consumed_total"), 0u);
  }
}

TEST(ObsPipelineTest, ConcurrentScrapesDuringIngestAndRotation) {
  obs::MetricsRegistry::Global().ResetAllForTest();
  const Stream sampled = pipeline_test::SampledStream(120000, /*gen_seed=*/29);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    obs::MetricsSnapshot prev;
    std::uint64_t last_items = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::Global().Snapshot();
      // Renders must be well-formed mid-flight (no torn strings, TSan
      // validates no data races on the slots they read).
      const std::string prom = obs::ToPrometheusText(snap);
      const std::string json = obs::ToJson(snap, &prev);
      EXPECT_FALSE(prom.empty());
      EXPECT_EQ(json.front(), '{');
      EXPECT_EQ(json.back(), '}');
      // Counters are monotonic across snapshots even while writers race.
      const std::uint64_t items =
          CounterValue(snap, "substream_sharded_items_consumed_total");
      EXPECT_GE(items, last_items);
      last_items = items;
      prev = snap;
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  {
    ShardedMonitorOptions options;
    options.shards = 4;
    options.batch_items = 512;
    ShardedMonitor sharded(TestConfig(), kSeed, options);
    const std::size_t chunk = sampled.size() / 16;
    for (std::size_t i = 0; i < 16; ++i) {
      sharded.Ingest(sampled.data() + i * chunk, chunk);
      if (i % 4 == 3) sharded.Rotate();
    }
    // Collect one rotated window while scraping continues.
    const auto window = sharded.CollectWindow(0);
    EXPECT_TRUE(window.has_value());
  }

  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  if (obs::kTelemetryEnabled) {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(CounterValue(snap, "substream_sharded_items_consumed_total"),
              (sampled.size() / 16) * 16);
  }
}

TEST(ObsPipelineTest, StripedWritersFromManyThreadsMergeExactly) {
  // Direct registry hammering from more threads than stripes: the merged
  // value must be exact after join, whatever the stripe assignment.
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("obs_pipeline_hammer_total");
  counter.ResetForTest();
  obs::Histogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("obs_pipeline_hammer_ns");
  hist.ResetForTest();
  constexpr int kThreads = 24;  // > kMetricStripes forces stripe sharing
  constexpr std::uint64_t kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        counter.Inc();
        hist.Observe(i & 1023);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t expected =
      obs::kTelemetryEnabled ? kThreads * kOps : 0;
  EXPECT_EQ(counter.Value(), expected);
  EXPECT_EQ(hist.Count(), expected);
}

}  // namespace
}  // namespace substream
