#ifndef SUBSTREAM_UTIL_HASH_H_
#define SUBSTREAM_UTIL_HASH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/common.h"

/// \file hash.h
/// Hash families used by the sketches.
///
/// Three families are provided, ordered by strength:
///  - Mix64: a fixed 64-bit finalizer (SplitMix64/Murmur3-style). Fast,
///    good avalanche, no independence guarantee. Used for seeding,
///    non-adversarial partitioning, and the shared prehash stage.
///  - PolynomialHash: k-wise independent hashing via a degree-(k-1)
///    polynomial over the Mersenne-prime field GF(2^61 - 1). Kept for the
///    independence-critical paths: CountSketch and AMS signs need 4-wise
///    independence for their variance bounds.
///  - TabulationHash: 3-wise independent but with much stronger
///    concentration behaviour in practice (Patrascu–Thorup); used where
///    hierarchical subsampling wants per-bit uniformity.
///
/// ## The shared prehash stage
///
/// Bucket selection across all counter-array sketches runs through one
/// strong 64-bit mix per item (PreHash) plus a cheap seeded remix per row
/// (RemixHash) and a branch-free fast-range reduction (FastRange64). A
/// `PrehashedItem` column computed once per batch feeds every summary in a
/// Monitor, so ingest cost grows with useful counter work instead of with
/// redundant per-sketch hashing. PreHash and RemixHash are bijections of
/// the item identity, so distinctness is preserved exactly (KMV/HLL) and
/// all occurrences of an item derive identical buckets everywhere.

namespace substream {

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a seed with a stream index to derive independent sub-seeds.
inline std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t index) {
  return Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
}

/// Branch-free Lemire fast-range reduction: maps a uniform 64-bit value to
/// [0, range) without the division a `%` would cost. Bias is at most
/// range / 2^64 per bucket — negligible for every geometry in this library.
inline std::uint64_t FastRange64(std::uint64_t x, std::uint64_t range) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * range) >> 64);
}

/// Salt folded into every prehash so the shared stage is distinct from raw
/// Mix64 uses elsewhere (seeding, shard routing salts).
inline constexpr std::uint64_t kPrehashSalt = 0x9ddfea08eb382d69ULL;

/// The one strong hash computed per stream item: full-avalanche and
/// bijective in the item identity.
inline std::uint64_t PreHash(std::uint64_t item) {
  return Mix64(item ^ kPrehashSalt);
}

/// A stream element paired with its prehash. The prehash column is computed
/// once per batch (Monitor) or once per ring hop (ShardedMonitor) and every
/// summary derives its per-row buckets from it via RemixHash.
struct PrehashedItem {
  std::uint64_t item = 0;
  std::uint64_t hash = 0;
};

inline PrehashedItem MakePrehashed(std::uint64_t item) {
  return PrehashedItem{item, PreHash(item)};
}

/// Non-owning SoA view of a prehashed batch: `items[i]` pairs with
/// `hashes[i]`. This is the batch payload of the columnar ingest paths —
/// parallel arrays give the SIMD kernels unit-stride loads (one loadu per
/// micro-block lane set) where the AoS `PrehashedItem[]` layout forced a
/// deinterleave shuffle per load. `PrehashedItem` stays the per-item
/// convenience; `At(i)` bridges to it for per-item fallback loops.
struct PrehashedColumns {
  const std::uint64_t* items = nullptr;
  const std::uint64_t* hashes = nullptr;

  PrehashedItem At(std::size_t i) const {
    return PrehashedItem{items[i], hashes[i]};
  }
};

/// Fills `out[0..n)` with the prehashed column for `data[0..n)`.
inline void PrehashColumn(const std::uint64_t* data, std::size_t n,
                          PrehashedItem* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = PrehashedItem{data[i], PreHash(data[i])};
  }
}

/// Fills `out_hashes[0..n)` with the prehash column for `data[0..n)`; the
/// item column is `data` itself (SoA needs no copy of the identities).
inline void PrehashColumnSoA(const std::uint64_t* data, std::size_t n,
                             std::uint64_t* out_hashes) {
  for (std::size_t i = 0; i < n; ++i) out_hashes[i] = PreHash(data[i]);
}

/// Items per prehash chunk of the batched ingest paths: 16 KiB of column,
/// small enough to stay L1-resident while the consumer fans it out.
inline constexpr std::size_t kPrehashChunkItems = 1024;

/// Runs stage 1 of the columnar ingest pipeline: prehashes `data[0..n)` in
/// stack-resident chunks and hands each chunk to `fn(column, m)`. Shared by
/// every UpdateBatch that feeds an UpdatePrehashed fan-out, so the chunking
/// policy cannot diverge between call sites.
template <typename Fn>
inline void ForEachPrehashedChunk(const std::uint64_t* data, std::size_t n,
                                  Fn&& fn) {
  PrehashedItem column[kPrehashChunkItems];
  for (std::size_t base = 0; base < n; base += kPrehashChunkItems) {
    const std::size_t m =
        n - base < kPrehashChunkItems ? n - base : kPrehashChunkItems;
    PrehashColumn(data + base, m, column);
    fn(column, m);
  }
}

/// SoA variant of ForEachPrehashedChunk: the same chunking policy, but each
/// chunk arrives as a PrehashedColumns view (items aliased straight into
/// `data`, hashes in a stack-resident column) so the consumer's SIMD rows
/// take unit-stride loads.
template <typename Fn>
inline void ForEachPrehashedChunkCols(const std::uint64_t* data, std::size_t n,
                                      Fn&& fn) {
  std::uint64_t hashes[kPrehashChunkItems];
  for (std::size_t base = 0; base < n; base += kPrehashChunkItems) {
    const std::size_t m =
        n - base < kPrehashChunkItems ? n - base : kPrehashChunkItems;
    PrehashColumnSoA(data + base, m, hashes);
    fn(PrehashedColumns{data + base, hashes}, m);
  }
}

/// Cheap per-row derivation from an already-mixed prehash: one seeded
/// multiply-xorshift round (Murmur3 fmix constant). Bijective in the
/// prehash for any fixed seed, so remixes never merge distinct items.
inline std::uint64_t RemixHash(std::uint64_t prehash, std::uint64_t seed) {
  std::uint64_t x = prehash ^ seed;
  x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdULL;
  return x ^ (x >> 29);
}

/// Reduces a 128-bit value modulo the Mersenne prime 2^61 - 1 via the
/// identity 2^61 ≡ 1 (mod p): fold the top bits down, one conditional
/// subtraction. The SINGLE definition of this reduction — PolynomialHash
/// and the SIMD sign kernels (sketch/counter_kernels.cc) both evaluate it,
/// and their bit-identity contract depends on the exact operation sequence
/// here (including the rare not-fully-reduced edge value p).
inline std::uint64_t ModMersenne61(unsigned __int128 x) {
  constexpr std::uint64_t kP = (1ULL << 61) - 1;
  const std::uint64_t lo = static_cast<std::uint64_t>(x) & kP;
  const std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kP) r -= kP;
  return r;
}

/// k-wise independent hash over GF(2^61 - 1).
///
/// h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0) mod (2^61 - 1), evaluated by
/// Horner's rule with 128-bit intermediate products. Output is uniform over
/// [0, 2^61 - 2]; helpers map it to buckets, signs, and unit doubles.
class PolynomialHash {
 public:
  /// Mersenne prime 2^61 - 1.
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  /// Creates a hash with `independence` >= 1 random coefficients derived
  /// deterministically from `seed`.
  PolynomialHash(int independence, std::uint64_t seed);

  /// Raw hash value in [0, kPrime - 1].
  std::uint64_t Hash(std::uint64_t x) const;

  /// Bucket index in [0, buckets). Uses a fast-range reduction instead of
  /// `%`: the 61-bit field value is spread over the full 64-bit domain
  /// (uniform over multiples of 8) and reduced with one high multiply,
  /// replacing the per-call division. Equivalent to
  /// floor(Hash(x) * buckets / 2^61) up to the field's negligible bias.
  std::uint64_t Bucket(std::uint64_t x, std::uint64_t buckets) const {
    return FastRange64(Hash(x) << 3, buckets);
  }

  /// Rademacher sign in {-1, +1}.
  int Sign(std::uint64_t x) const {
    return (Hash(x) & 1) ? +1 : -1;
  }

  /// Uniform double in [0, 1).
  double Unit(std::uint64_t x) const {
    return static_cast<double>(Hash(x)) / static_cast<double>(kPrime);
  }

  int independence() const { return static_cast<int>(coeffs_.size()); }

  /// Coefficients (constant term first), already reduced into [0, kPrime).
  /// The SIMD sign kernels (sketch/counter_kernels.h) evaluate the same
  /// polynomial lane-parallel from a packed copy of these.
  const std::vector<std::uint64_t>& coefficients() const { return coeffs_; }

  /// Memory footprint of the hash description in bytes.
  std::size_t SpaceBytes() const {
    return coeffs_.size() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> coeffs_;
};

/// Simple (twisted) tabulation hashing on 8-bit characters of a 64-bit key.
///
/// 3-wise independent; empirically behaves like a fully random function for
/// the subsampling and level-set machinery.
class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed);

  std::uint64_t Hash(std::uint64_t x) const {
    std::uint64_t h = 0;
    for (int c = 0; c < 8; ++c) {
      h ^= table_[c][(x >> (8 * c)) & 0xff];
    }
    return h;
  }

  std::size_t SpaceBytes() const { return sizeof(table_); }

 private:
  std::uint64_t table_[8][256];
};

}  // namespace substream

#endif  // SUBSTREAM_UTIL_HASH_H_
