#include "core/fk_estimator.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "stream/exact_stats.h"
#include "stream/generators.h"
#include "stream/samplers.h"
#include "util/math.h"
#include "util/stats.h"

namespace substream {
namespace {

/// Runs Algorithm 1 on a Bernoulli(p) sample of `original`.
double RunFk(const Stream& original, const FkParams& params,
             std::uint64_t seed) {
  BernoulliSampler sampler(params.p, seed);
  FkEstimator estimator(params, seed + 1);
  for (item_t a : original) {
    if (sampler.Keep()) estimator.Update(a);
  }
  return estimator.Estimate();
}

TEST(FkEstimatorTest, ExactBackendAtPEqualOneIsExact) {
  ZipfGenerator g(1000, 1.2, 1);
  Stream s = Materialize(g, 50000);
  FrequencyTable exact = ExactStats(s);
  for (int k = 2; k <= 5; ++k) {
    FkParams params;
    params.k = k;
    params.p = 1.0;
    params.backend = CollisionBackend::kExactCollisions;
    FkEstimator est(params, 2);
    for (item_t a : s) est.Update(a);
    EXPECT_NEAR(est.Estimate(), exact.Fk(k), 1e-6 * exact.Fk(k))
        << "k=" << k;
  }
}

TEST(FkEstimatorTest, MomentLadderMatchesAllOrders) {
  ZipfGenerator g(500, 1.3, 3);
  Stream s = Materialize(g, 30000);
  FrequencyTable exact = ExactStats(s);
  FkParams params;
  params.k = 4;
  params.p = 1.0;
  params.backend = CollisionBackend::kExactCollisions;
  FkEstimator est(params, 4);
  for (item_t a : s) est.Update(a);
  const auto moments = est.AllMoments();
  ASSERT_EQ(moments.size(), 4u);
  for (int l = 1; l <= 4; ++l) {
    EXPECT_NEAR(moments[static_cast<std::size_t>(l - 1)], exact.Fk(l),
                1e-6 * exact.Fk(l))
        << "l=" << l;
  }
}

// Property sweep (Theorem 1 shape): with the exact-collision backend the
// only error is sampling noise; the estimate should land within a modest
// factor of the truth across k and p combinations, measured by the median
// over trials.
class FkSamplingSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FkSamplingSweepTest, MedianErrorSmall) {
  const int k = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  ZipfGenerator g(2000, 1.2, 5);
  Stream s = Materialize(g, 100000);
  FrequencyTable exact = ExactStats(s);
  FkParams params;
  params.k = k;
  params.p = p;
  params.backend = CollisionBackend::kExactCollisions;
  std::vector<double> errors;
  for (int trial = 0; trial < 9; ++trial) {
    const double estimate =
        RunFk(s, params, 100 * static_cast<std::uint64_t>(trial) + 11);
    errors.push_back(RelativeError(estimate, exact.Fk(k)));
  }
  // Tolerance grows with k (collision unbiasing amplifies noise by the beta
  // ladder) and shrinks with p.
  const double tolerance = 0.12 * std::pow(1.8, k - 2) / std::sqrt(p);
  EXPECT_LT(Median(errors), tolerance) << "k=" << k << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    TheoremOneSweep, FkSamplingSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1.0, 0.5, 0.2, 0.1)));

TEST(FkEstimatorTest, SketchBackendWithinFactorOnSkewedStream) {
  ZipfGenerator g(4000, 1.3, 6);
  Stream s = Materialize(g, 150000);
  FrequencyTable exact = ExactStats(s);
  FkParams params;
  params.k = 2;
  params.p = 0.5;
  params.universe = 4000;
  params.backend = CollisionBackend::kSketch;
  params.space_multiplier = 2.0;
  std::vector<double> estimates;
  for (int trial = 0; trial < 5; ++trial) {
    estimates.push_back(RunFk(s, params, 500 + static_cast<std::uint64_t>(trial)));
  }
  EXPECT_TRUE(WithinFactor(Median(estimates), exact.Fk(2), 1.7))
      << "median=" << Median(estimates) << " exact=" << exact.Fk(2);
}

TEST(FkEstimatorTest, ExactLevelSetBackendCloseToExactCollisions) {
  ZipfGenerator g(1000, 1.2, 7);
  Stream s = Materialize(g, 60000);
  FkParams exact_params;
  exact_params.k = 3;
  exact_params.p = 1.0;
  exact_params.backend = CollisionBackend::kExactCollisions;
  FkParams level_params = exact_params;
  level_params.backend = CollisionBackend::kExactLevelSets;
  FkEstimator a(exact_params, 8), b(level_params, 8);
  for (item_t x : s) {
    a.Update(x);
    b.Update(x);
  }
  // Discretization alone must stay within the (1+eps')^l envelope; the
  // schedule-driven eps' is small, so demand 15%.
  EXPECT_LT(RelativeError(b.Estimate(), a.Estimate()), 0.15);
}

TEST(FkEstimatorTest, SampledLengthAndPhi1) {
  FkParams params;
  params.k = 2;
  params.p = 0.25;
  params.backend = CollisionBackend::kExactCollisions;
  FkEstimator est(params, 9);
  for (int i = 0; i < 1000; ++i) est.Update(static_cast<item_t>(i));
  EXPECT_EQ(est.SampledLength(), 1000u);
  // phi~_1 = F1(L)/p = 4000.
  EXPECT_DOUBLE_EQ(est.AllMoments()[0], 4000.0);
}

TEST(FkEstimatorTest, EpsilonScheduleExposed) {
  FkParams params;
  params.k = 3;
  params.epsilon = 0.3;
  params.backend = CollisionBackend::kExactCollisions;
  FkEstimator est(params, 10);
  ASSERT_EQ(est.epsilon_schedule().size(), 3u);
  EXPECT_DOUBLE_EQ(est.epsilon_schedule()[2], 0.3);
}

TEST(FkEstimatorTest, MinSamplingProbabilityFormula) {
  EXPECT_DOUBLE_EQ(FkEstimator::MinSamplingProbability(2, 10000, 1 << 30),
                   0.01);
  EXPECT_DOUBLE_EQ(FkEstimator::MinSamplingProbability(2, 1 << 30, 10000),
                   0.01);
  EXPECT_NEAR(FkEstimator::MinSamplingProbability(3, 1000000, 1 << 30),
              0.01, 1e-12);
}

TEST(FkEstimatorTest, SketchWidthScalesWithPAndK) {
  FkParams base;
  base.k = 2;
  base.p = 0.1;
  base.universe = 1 << 16;
  FkParams smaller_p = base;
  smaller_p.p = 0.01;
  EXPECT_GT(FkEstimator::SketchWidth(smaller_p),
            FkEstimator::SketchWidth(base));
  FkParams higher_k = base;
  higher_k.k = 4;
  EXPECT_GT(FkEstimator::SketchWidth(higher_k),
            FkEstimator::SketchWidth(base));
  FkParams capped = higher_k;
  capped.max_width = 128;
  EXPECT_EQ(FkEstimator::SketchWidth(capped), 128u);
}

TEST(FkEstimatorTest, CollisionEstimatesDiagnostics) {
  FkParams params;
  params.k = 3;
  params.p = 1.0;
  params.backend = CollisionBackend::kExactCollisions;
  FkEstimator est(params, 11);
  // f = (3, 2): C2 = 3+1 = 4, C3 = 1.
  for (item_t x : Stream{1, 1, 1, 2, 2}) est.Update(x);
  const auto collisions = est.CollisionEstimates();
  ASSERT_EQ(collisions.size(), 2u);
  EXPECT_DOUBLE_EQ(collisions[0], 4.0);
  EXPECT_DOUBLE_EQ(collisions[1], 1.0);
}

TEST(FkEstimatorTest, LadderIsMonotoneByConstruction) {
  UniformGenerator g(50000, 12);
  Stream s = Materialize(g, 20000);  // mostly singletons
  FkParams params;
  params.k = 5;
  params.p = 0.3;
  params.backend = CollisionBackend::kExactCollisions;
  BernoulliSampler sampler(params.p, 13);
  FkEstimator est(params, 14);
  for (item_t a : s) {
    if (sampler.Keep()) est.Update(a);
  }
  const auto moments = est.AllMoments();
  for (std::size_t i = 1; i < moments.size(); ++i) {
    EXPECT_GE(moments[i], moments[i - 1]);
  }
}

TEST(FkEstimatorTest, SketchSpaceIndependentOfStreamSize) {
  // The point of Theorem 1: sketch space depends on (p, m, eps) only —
  // feeding 8x more data must not grow it materially, while the exact
  // backend grows with the distinct count of L.
  FkParams sketch_params;
  sketch_params.k = 2;
  sketch_params.p = 0.25;
  sketch_params.epsilon = 0.2;
  sketch_params.universe = 1 << 20;
  sketch_params.backend = CollisionBackend::kSketch;
  sketch_params.space_multiplier = 1.0;
  FkParams exact_params = sketch_params;
  exact_params.backend = CollisionBackend::kExactCollisions;

  auto space_after = [](const FkParams& params, std::size_t n) {
    UniformGenerator g(1 << 20, 15);
    BernoulliSampler sampler(params.p, 16);
    FkEstimator est(params, 17);
    for (std::size_t i = 0; i < n; ++i) {
      const item_t a = g.Next();
      if (sampler.Keep()) est.Update(a);
    }
    return est.SpaceBytes();
  };

  const std::size_t sketch_small = space_after(sketch_params, 50000);
  const std::size_t sketch_large = space_after(sketch_params, 400000);
  const std::size_t exact_small = space_after(exact_params, 50000);
  const std::size_t exact_large = space_after(exact_params, 400000);

  EXPECT_LT(static_cast<double>(sketch_large),
            1.25 * static_cast<double>(sketch_small));
  EXPECT_GT(static_cast<double>(exact_large),
            3.0 * static_cast<double>(exact_small));
  EXPECT_LT(sketch_large, exact_large);
}

}  // namespace
}  // namespace substream
