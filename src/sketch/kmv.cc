#include "sketch/kmv.h"

#include "serde/serde.h"

namespace substream {

KmvSketch::KmvSketch(std::size_t k, std::uint64_t seed) : k_(k), seed_(seed) {
  SUBSTREAM_CHECK(k >= 2);
}

void KmvSketch::Update(const PrehashedItem& ph) {
  const std::uint64_t h = RemixHash(ph.hash, seed_);
  if (values_.size() < k_) {
    values_.insert(h);
    return;
  }
  auto last = std::prev(values_.end());
  if (h < *last && values_.find(h) == values_.end()) {
    values_.erase(last);
    values_.insert(h);
  }
}

bool KmvSketch::MergeCompatibleWith(const KmvSketch& other) const {
  return k_ == other.k_ && seed_ == other.seed_;
}

void KmvSketch::Merge(const KmvSketch& other) {
  SUBSTREAM_CHECK_MSG(MergeCompatibleWith(other),
                      "merging incompatible KMV sketches");
  for (std::uint64_t h : other.values_) {
    values_.insert(h);
  }
  while (values_.size() > k_) {
    values_.erase(std::prev(values_.end()));
  }
}

void KmvSketch::Serialize(serde::Writer& out) const {
  out.Record(serde::TypeTag::kKmvSketch);
  out.Varint(k_);
  out.U64(seed_);
  out.Varint(values_.size());
  for (std::uint64_t h : values_) out.U64(h);  // increasing std::set order
}

std::optional<KmvSketch> KmvSketch::Deserialize(serde::Reader& in) {
  if (!in.ExpectRecord(serde::TypeTag::kKmvSketch)) return std::nullopt;
  const std::uint64_t k = in.Varint();
  const std::uint64_t seed = in.U64();
  const std::uint64_t count = in.Varint();
  if (!in.ok() || k < 2 || count > k || !in.CanHold(count, 8)) {
    return std::nullopt;
  }
  KmvSketch sketch(k, seed);
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t h = in.U64();
    if (!in.ok()) return std::nullopt;
    if (i > 0 && h <= previous) {
      in.Fail();  // not strictly increasing: corrupt set encoding
      return std::nullopt;
    }
    sketch.values_.insert(sketch.values_.end(), h);
    previous = h;
  }
  return sketch;
}

double KmvSketch::Estimate() const {
  if (values_.size() < k_) {
    return static_cast<double>(values_.size());
  }
  // Hash values are uniform over the full 64-bit range.
  const double vk = static_cast<double>(*values_.rbegin()) * 0x1.0p-64;
  if (vk <= 0.0) return static_cast<double>(values_.size());
  return (static_cast<double>(k_) - 1.0) / vk;
}

}  // namespace substream
