/// Targeted tests for the hybrid readout of the level-set structure:
/// exact integer bins for small frequencies, sparse exact recovery of
/// substreams below capacity, and graceful fallback to CountSketch
/// recovery on overflow. These paths were added after ablation A1 showed
/// they dominate accuracy (see EXPERIMENTS.md, "Known deviations").

#include <cmath>

#include <gtest/gtest.h>

#include "sketch/level_sets.h"
#include "stream/exact_stats.h"
#include "stream/generators.h"
#include "util/math.h"

namespace substream {
namespace {

LevelSetParams SmallParams() {
  LevelSetParams p;
  p.eps_prime = 0.2;
  p.max_depth = 12;
  p.cs_depth = 5;
  p.cs_width = 1024;
  return p;
}

TEST(LevelSetHybridTest, IntegerBinsFlaggedAndExactForSmallFrequencies) {
  // 100 items of frequency 3: with sparse recovery the structure must
  // report exactly one level — the integer bin at value 3, size 100.
  std::vector<count_t> freqs(100, 3);
  Stream s = StreamFromFrequencies(freqs, 1);
  IndykWoodruffEstimator iw(SmallParams(), 2);
  for (item_t a : s) iw.Update(a);
  const auto levels = iw.EstimateLevelSets();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_TRUE(levels[0].integer_bin);
  EXPECT_DOUBLE_EQ(levels[0].value, 3.0);
  EXPECT_DOUBLE_EQ(levels[0].size, 100.0);
  // C2 = 100 * C(3,2) = 300, exactly.
  EXPECT_DOUBLE_EQ(iw.EstimateCollisions(2), 300.0);
  EXPECT_DOUBLE_EQ(iw.EstimateCollisions(3), 100.0);
  EXPECT_DOUBLE_EQ(iw.EstimateCollisions(4), 0.0);
}

TEST(LevelSetHybridTest, MixedSmallAndLargeFrequenciesExactWhileSparse) {
  // 2 items @1000 (geometric levels) + 50 items @2 (integer bin): while
  // everything fits the exact maps, C2 must be exact for the small part
  // and within the eps' envelope for the large part.
  std::vector<count_t> freqs = {1000, 1000};
  for (int i = 0; i < 50; ++i) freqs.push_back(2);
  Stream s = StreamFromFrequencies(freqs, 3);
  IndykWoodruffEstimator iw(SmallParams(), 4);
  for (item_t a : s) iw.Update(a);
  const double exact_c2 = 2.0 * BinomialDouble(1000, 2) + 50.0;
  EXPECT_LT(RelativeError(iw.EstimateCollisions(2), exact_c2), 0.25);
  // The g=2 items alone: check an integer bin at 2 with size ~50 exists.
  double bin2 = 0.0;
  for (const auto& level : iw.EstimateLevelSets()) {
    if (level.integer_bin && level.value == 2.0) bin2 += level.size;
  }
  EXPECT_DOUBLE_EQ(bin2, 50.0);
}

TEST(LevelSetHybridTest, SparseRecoveryDisabledStillWorks) {
  LevelSetParams params = SmallParams();
  params.exact_capacity = 1;  // force the CountSketch path everywhere
  ZipfGenerator g(2000, 1.3, 5);
  Stream s = Materialize(g, 60000);
  FrequencyTable exact = ExactStats(s);
  IndykWoodruffEstimator iw(params, 6);
  for (item_t a : s) iw.Update(a);
  EXPECT_TRUE(WithinFactor(iw.EstimateCollisions(2),
                           exact.CollisionCount(2), 1.8));
}

TEST(LevelSetHybridTest, OverflowFallsBackGracefully) {
  // More distinct items than exact capacity at shallow depths: the
  // structure must still deliver a collision estimate within a constant
  // factor via CountSketch recovery at the shallow depths plus exact maps
  // at the (still sparse) deep ones.
  LevelSetParams params = SmallParams();
  params.exact_capacity = 64;  // overflows immediately at depth 0
  ZipfGenerator g(4000, 1.3, 7);
  Stream s = Materialize(g, 80000);
  FrequencyTable exact = ExactStats(s);
  IndykWoodruffEstimator iw(params, 8);
  for (item_t a : s) iw.Update(a);
  EXPECT_TRUE(WithinFactor(iw.EstimateCollisions(2),
                           exact.CollisionCount(2), 1.8));
}

TEST(LevelSetHybridTest, SparseRecoveryBeatsCsOnlyOnDiffuseStream) {
  // The motivating regime: diffuse stream of tiny frequencies, where
  // CountSketch point noise corrupts small-frequency levels but exact
  // sparse counting is perfect.
  std::vector<count_t> freqs(3000, 2);  // C2 = 3000
  Stream s = StreamFromFrequencies(freqs, 9);
  LevelSetParams with = SmallParams();
  LevelSetParams without = SmallParams();
  without.exact_capacity = 1;
  IndykWoodruffEstimator a(with, 10), b(without, 10);
  for (item_t x : s) {
    a.Update(x);
    b.Update(x);
  }
  const double err_with = RelativeError(a.EstimateCollisions(2), 3000.0);
  const double err_without = RelativeError(b.EstimateCollisions(2), 3000.0);
  // Depth 0 overflows (3000 distinct > default exact capacity), so the
  // readout uses the exactly counted depth-1 substream: classification is
  // exact, the only error is the depth-1 subsample draw (binomial, sd
  // ~1.8% here).
  EXPECT_LT(err_with, 0.05);
  EXPECT_LE(err_with, err_without);
}

TEST(LevelSetHybridTest, SingletonPhantomsBoundedWithoutSparseZeroWith) {
  // On an all-singleton stream, CountSketch-only recovery leaks phantom
  // bin-2 members (point noise is +-1 for unit frequencies), but the leak
  // stays a bounded overestimate — the s~_i <= 3|S_i| style guarantee of
  // Theorem 2 — while sparse recovery (the default) is exactly zero.
  DistinctGenerator g;
  Stream s = Materialize(g, 30000);
  LevelSetParams cs_only = SmallParams();
  cs_only.exact_capacity = 1;
  cs_only.cs_width = 4096;
  IndykWoodruffEstimator noisy(cs_only, 11);
  IndykWoodruffEstimator sparse(SmallParams(), 11);
  for (item_t a : s) {
    noisy.Update(a);
    sparse.Update(a);
  }
  EXPECT_LT(noisy.EstimateCollisions(2),
            0.25 * static_cast<double>(s.size()));
  // Sparse recovery reads the small bins exactly (zero contribution);
  // shallow depths overflow the exact capacity on 30k distinct items, so
  // geometric levels can still pick up a little CS noise — but far less
  // than the CS-only path.
  EXPECT_LT(sparse.EstimateCollisions(2),
            0.1 * static_cast<double>(s.size()));
  EXPECT_LT(sparse.EstimateCollisions(2), noisy.EstimateCollisions(2));
}

TEST(LevelSetHybridTest, SpaceAccountsForExactMaps) {
  LevelSetParams small = SmallParams();
  small.exact_capacity = 1;
  LevelSetParams big = SmallParams();
  big.exact_capacity = 4096;
  UniformGenerator g(3000, 12);
  Stream s = Materialize(g, 20000);
  IndykWoodruffEstimator a(small, 13), b(big, 13);
  for (item_t x : s) {
    a.Update(x);
    b.Update(x);
  }
  EXPECT_LT(a.SpaceBytes(), b.SpaceBytes());
}

TEST(LevelSetHybridTest, MergePreservesSparseExactness) {
  // Two halves of a small-frequency stream merged: counts add exactly
  // while capacity allows, so the merged C2 is exact.
  std::vector<count_t> freqs(200, 1);
  Stream s1 = StreamFromFrequencies(freqs, 14);
  Stream s2 = StreamFromFrequencies(freqs, 15);  // same items again
  IndykWoodruffEstimator a(SmallParams(), 16), b(SmallParams(), 16);
  for (item_t x : s1) a.Update(x);
  for (item_t x : s2) b.Update(x);
  a.Merge(b);
  // Every item now has frequency 2: C2 = 200.
  EXPECT_DOUBLE_EQ(a.EstimateCollisions(2), 200.0);
}

}  // namespace
}  // namespace substream
