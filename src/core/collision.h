#ifndef SUBSTREAM_CORE_COLLISION_H_
#define SUBSTREAM_CORE_COLLISION_H_

#include <vector>

#include "util/common.h"

/// \file collision.h
/// The collision algebra of Section 3 (Definition 2, Lemma 1, Lemma 2).
///
/// For a frequency vector f, the l-wise collision count is
///   C_l = sum_i C(f_i, l),
/// and Lemma 1 (Eq. 1) inverts the falling-factorial expansion:
///   F_l = l! * C_l + sum_{j=1}^{l-1} beta^l_j * F_j,
/// where beta^l_j = (-1)^{l-j+1} e_{l-j}(1, ..., l-1) = -s(l, j) with
/// s(.,.) the signed Stirling numbers of the first kind.
///
/// Lemma 2 gives E[C_l(L)] = p^l C_l(P): every l-subset of equal items
/// survives Bernoulli(p) sampling with probability p^l. These identities
/// are what make moment recovery from a sampled stream possible.

namespace substream {

/// beta^l_j coefficient of Eq. (1); defined for 1 <= j < l <= 20.
double BetaCoefficient(int l, int j);

/// A_l = sum_{j=1}^{l-1} |beta^l_j|, the amplification factor in the
/// epsilon schedule of Lemma 3.
double BetaAbsSum(int l);

/// Recovers F_l from the collision count and the lower moments via Eq. (1):
/// F_l = l! * collisions + sum_j beta^l_j * lower_moments[j-1].
/// `lower_moments` holds F_1 .. F_{l-1}.
double MomentFromCollisions(int l, double collisions,
                            const std::vector<double>& lower_moments);

/// Exact C_l of an explicit frequency vector (reference implementation).
double CollisionsFromFrequencies(const std::vector<count_t>& frequencies,
                                 int l);

/// Exact F_l of an explicit frequency vector.
double MomentFromFrequencies(const std::vector<count_t>& frequencies, int l);

/// The epsilon schedule of Lemma 3: eps_k = eps and
/// eps_{l-1} = eps_l / (A_l + 1). Returns eps_1 .. eps_k (index 0 unused
/// slot omitted: result[l-1] = eps_l).
std::vector<double> EpsilonSchedule(int k, double epsilon);

/// Expected collision count of the sampled stream: p^l * C_l(P)  (Lemma 2).
double ExpectedSampledCollisions(double collisions_original, double p, int l);

/// Unbiased estimate of C_l(P) from an observed C_l(L): C_l(L) / p^l.
double UnbiasedOriginalCollisions(double collisions_sampled, double p, int l);

}  // namespace substream

#endif  // SUBSTREAM_CORE_COLLISION_H_
