#ifndef SUBSTREAM_CORE_ENTROPY_ESTIMATOR_H_
#define SUBSTREAM_CORE_ENTROPY_ESTIMATOR_H_

#include <memory>
#include <optional>

#include "sketch/entropy_sketch.h"
#include "util/common.h"

/// \file entropy_estimator.h
/// Section 5 / Theorem 5: constant-factor estimation of the empirical
/// entropy H(f) of the original stream from the sampled stream L.
///
/// Lemma 9 shows no multiplicative approximation is possible in general
/// (even at constant p); but Proposition 1 + Lemma 10 show that the entropy
/// of the sampled stream is a constant-factor proxy once the true entropy
/// clears the threshold omega(p^{-1/2} n^{-1/6}):
///   H(f)/2 - O(p^{-1/2} n^{-1/6})  <=  H_pn(g)  <=  O(H(f)).
/// The estimator therefore reports H(g) (multiplicatively estimated on L)
/// together with the validity threshold so callers can tell whether the
/// constant-factor guarantee applies.

namespace substream {

/// Streaming backend used to estimate H(g) on L.
enum class EntropyBackend {
  kMle,          ///< plug-in entropy over exact counts of L
  kMillerMadow,  ///< MLE + Miller–Madow bias correction
  kAmsSketch,    ///< Chakrabarti–Cormode–McGregor AMS-style sketch
};

/// Parameters of the entropy estimator.
struct EntropyParams {
  double p = 1.0;    ///< sampling probability of L
  /// Original stream length n, if known; 0 means "infer as F1(L)/p". Used
  /// for H_pn normalization and the validity threshold.
  double n_hint = 0.0;
  EntropyBackend backend = EntropyBackend::kMle;
  double epsilon = 0.2;   ///< AMS sketch relative error target
  double delta = 0.05;    ///< AMS sketch failure probability
};

/// Result of an entropy estimation (all entropies in bits).
struct EntropyResult {
  /// The estimate of H(f): the (multiplicative) estimate of H(g).
  double entropy = 0.0;
  /// The paper's normalized quantity H_pn(g) (MLE backends only; otherwise
  /// equals `entropy`).
  double entropy_hpn = 0.0;
  /// Validity threshold p^{-1/2} n^{-1/6} from Lemma 10/Theorem 5.
  double threshold = 0.0;
  /// True when the estimate clears the threshold, i.e. the constant-factor
  /// guarantee of Theorem 5 is in force.
  bool reliable = false;
};

/// One-pass entropy estimator over the sampled stream (Theorem 5).
class EntropyEstimator {
 public:
  EntropyEstimator(const EntropyParams& params, std::uint64_t seed);
  ~EntropyEstimator();
  EntropyEstimator(EntropyEstimator&&) noexcept;
  EntropyEstimator& operator=(EntropyEstimator&&) noexcept;

  /// Feeds one element of the sampled stream L.
  void Update(item_t item);

  /// Feeds `n` contiguous elements of L.
  void UpdateBatch(const item_t* data, std::size_t n);

  /// Feeds `n` already-prehashed elements of L (the Monitor pipeline's
  /// columnar entry point; the entropy backends replay scalar updates, so
  /// all three ingest paths stay bit-identical).
  void UpdatePrehashed(const PrehashedItem* data, std::size_t n);

  /// SoA form: fans the columns to the configured backend.
  void UpdatePrehashed(PrehashedColumns cols, std::size_t n);

  /// Weighted (sampled-ingest) forms: each element carries `weight` units.
  /// MLE-backend only — the AMS reservoir samples stream *positions* and
  /// cannot absorb weighted occurrences (same restriction as MergeScaled);
  /// Monitor always runs the MLE backend.
  void UpdatePrehashedWeighted(const PrehashedItem* data, std::size_t n,
                               count_t weight);
  void UpdatePrehashedWeighted(PrehashedColumns cols, std::size_t n,
                               count_t weight);

  /// Merges an estimator built with the same parameters and seed. The MLE
  /// backends merge exactly; the AMS sketch merges via the distributed-
  /// reservoir rule (see AmsEntropySketch::Merge).
  void Merge(const EntropyEstimator& other);
  /// True when Merge(other) preconditions hold, checked all the way
  /// down through nested summaries; the Collector uses this to reject
  /// decoded-but-incompatible records instead of tripping the abort.
  bool MergeCompatibleWith(const EntropyEstimator& other) const;

  /// Decayed merge (MLE backends only — an AMS reservoir position cannot
  /// be weight-scaled, and Monitor always uses MLE): counts contribute
  /// scaled by `weight`, yielding the entropy of the decayed empirical
  /// distribution. `weight` in (0, 1]; weight 1 delegates to Merge.
  void MergeScaled(const EntropyEstimator& other, double weight);

  /// Clears all state; parameters, seed and backend are kept.
  void Reset();

  EntropyResult Estimate() const;

  count_t SampledLength() const { return sampled_length_; }
  const EntropyParams& params() const { return params_; }

  /// The Lemma 10 validity threshold for given p and n.
  static double ValidityThreshold(double p, double n);

  std::size_t SpaceBytes() const;

  /// Appends the versioned wire record: parameter header, then the active
  /// backend's nested record.
  void Serialize(serde::Writer& out) const;

  /// Decodes one record; std::nullopt on truncated or corrupted input.
  static std::optional<EntropyEstimator> Deserialize(serde::Reader& in);

 private:
  /// Deserialize-only: adopts params without building a backend (the
  /// decoded nested record supplies it).
  struct DeserializeTag {};
  EntropyEstimator(DeserializeTag, const EntropyParams& params)
      : params_(params) {}

  EntropyParams params_;
  count_t sampled_length_ = 0;
  std::unique_ptr<EntropyMleEstimator> mle_;
  std::unique_ptr<AmsEntropySketch> ams_;
};

}  // namespace substream

#endif  // SUBSTREAM_CORE_ENTROPY_ESTIMATOR_H_
