/// E2 (Section 1.2): the time/space tradeoff. For n = Theta(m) and
/// p = Theta(1/sqrt(n)), estimating F2 requires observing only ~sqrt(n)
/// elements and O~(sqrt(n)) workspace, instead of reading all n updates.
///
/// Prints, per n: the sampled length (expected sqrt(n)), wall time to
/// process L vs wall time to process P exactly, workspace, and the median
/// relative error over trials. Expectation: sampled length and workspace
/// grow like sqrt(n); error stays at a constant factor.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fk_estimator.h"
#include "stream/exact_stats.h"
#include "stream/generators.h"
#include "stream/samplers.h"
#include "util/math.h"
#include "util/stats.h"

namespace substream {
namespace {

using bench::FmtF;
using bench::FmtI;
using bench::Stopwatch;
using bench::Table;

void RunExperiment() {
  std::printf("E2: time/space tradeoff for F2 with p = 1/sqrt(n)\n");
  std::printf("    (Section 1.2; uniform workload with m = n/2; 15 trials)\n\n");

  Table table({"n", "p=16/sqrt(n)", "E[|L|]", "obs |L|", "exact time(ms)",
               "sampled time(ms)", "workspace(B)", "med rel.err",
               "sqrt(n) ref"});

  // The Theta~(1/sqrt(n)) of Section 1.2 hides polylog and poly(1/eps)
  // factors; the constant 16 stands in for them (expected collision count
  // in the sample ~ 16^2, enough for a stable estimate). The asymptotic
  // sqrt(n) shape is unchanged.
  for (int log_n = 12; log_n <= 18; log_n += 2) {
    const std::size_t n = 1ULL << log_n;
    const double p = std::min(1.0, 16.0 / std::sqrt(static_cast<double>(n)));
    UniformGenerator gen(n / 2, 7);
    Stream original = Materialize(gen, n);

    // Exact pass over P (the cost the sampling regime avoids).
    Stopwatch exact_watch;
    FrequencyTable exact = ExactStats(original);
    const double exact_ms = exact_watch.Seconds() * 1e3;
    const double truth = exact.Fk(2);

    std::vector<double> errors;
    double sampled_ms = 0.0;
    double sampled_len = 0.0;
    std::size_t workspace = 0;
    const int kTrials = 15;
    for (int t = 0; t < kTrials; ++t) {
      FkParams params;
      params.k = 2;
      params.p = p;
      params.universe = n / 2;
      params.backend = CollisionBackend::kExactCollisions;
      BernoulliSampler sampler(p, 100 + static_cast<std::uint64_t>(t));
      Stream sampled = sampler.Sample(original);
      Stopwatch watch;
      FkEstimator estimator(params, 200 + static_cast<std::uint64_t>(t));
      for (item_t a : sampled) estimator.Update(a);
      const double estimate = estimator.Estimate();
      sampled_ms += watch.Seconds() * 1e3;
      errors.push_back(RelativeError(estimate, truth));
      sampled_len += static_cast<double>(sampled.size());
      workspace = estimator.SpaceBytes();
    }
    table.AddRow({std::to_string(n), FmtF(p, 5),
                  FmtI(p * static_cast<double>(n)),
                  FmtI(sampled_len / kTrials), FmtF(exact_ms, 2),
                  FmtF(sampled_ms / kTrials, 3),
                  FmtI(static_cast<double>(workspace)),
                  FmtF(Median(errors), 3),
                  FmtI(std::sqrt(static_cast<double>(n)))});
  }
  table.Print();
  std::printf(
      "\nReading: |L| and workspace track sqrt(n); per-trial processing time\n"
      "is orders of magnitude below the exact pass, at the cost of a\n"
      "small relative error once p carries the Theta~ constants.\n");
}

}  // namespace
}  // namespace substream

int main() {
  substream::RunExperiment();
  return 0;
}
