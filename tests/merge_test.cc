/// Merge semantics across the sketch family: a merged sketch must be
/// equivalent (exactly, for linear sketches; within guarantees, for
/// summaries) to a single sketch fed the concatenated stream. This is the
/// distributed-monitors setting of the related work [16, 36]: several
/// routers each sample and sketch locally, a collector merges.

#include <gtest/gtest.h>

#include "core/substream.h"

namespace substream {
namespace {

struct TwoStreams {
  Stream a;
  Stream b;
  Stream both;
};

TwoStreams MakeStreams() {
  TwoStreams t;
  ZipfGenerator g1(2000, 1.2, 1);
  ZipfGenerator g2(3000, 1.0, 2);
  t.a = Materialize(g1, 30000);
  t.b = Materialize(g2, 40000);
  t.both = t.a;
  t.both.insert(t.both.end(), t.b.begin(), t.b.end());
  return t;
}

TEST(MergeTest, CountMinEqualsConcatenation) {
  TwoStreams t = MakeStreams();
  CountMinSketch sa(5, 1024, false, 7), sb(5, 1024, false, 7),
      sboth(5, 1024, false, 7);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_EQ(sa.TotalCount(), sboth.TotalCount());
  for (item_t probe : {1, 2, 3, 10, 100, 999}) {
    EXPECT_EQ(sa.Estimate(static_cast<item_t>(probe)),
              sboth.Estimate(static_cast<item_t>(probe)));
  }
}

TEST(MergeTest, CountSketchEqualsConcatenation) {
  TwoStreams t = MakeStreams();
  CountSketch sa(5, 1024, 9), sb(5, 1024, 9), sboth(5, 1024, 9);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_DOUBLE_EQ(sa.EstimateF2(), sboth.EstimateF2());
  for (item_t probe : {1, 2, 3, 10, 100}) {
    EXPECT_DOUBLE_EQ(sa.Estimate(static_cast<item_t>(probe)),
                     sboth.Estimate(static_cast<item_t>(probe)));
  }
}

TEST(MergeTest, AmsEqualsConcatenation) {
  TwoStreams t = MakeStreams();
  AmsF2Sketch sa = AmsF2Sketch::WithGeometry(5, 64, 11);
  AmsF2Sketch sb = AmsF2Sketch::WithGeometry(5, 64, 11);
  AmsF2Sketch sboth = AmsF2Sketch::WithGeometry(5, 64, 11);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_DOUBLE_EQ(sa.Estimate(), sboth.Estimate());
}

TEST(MergeTest, KmvEqualsConcatenation) {
  TwoStreams t = MakeStreams();
  KmvSketch sa(256, 13), sb(256, 13), sboth(256, 13);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_DOUBLE_EQ(sa.Estimate(), sboth.Estimate());
}

TEST(MergeTest, HllEqualsConcatenation) {
  TwoStreams t = MakeStreams();
  HyperLogLog sa(12, 15), sb(12, 15), sboth(12, 15);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_DOUBLE_EQ(sa.Estimate(), sboth.Estimate());
}

TEST(MergeTest, MisraGriesKeepsGuaranteeAfterMerge) {
  TwoStreams t = MakeStreams();
  const std::size_t k = 64;
  MisraGries sa(k), sb(k);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  sa.Merge(sb);
  FrequencyTable exact = ExactStats(t.both);
  // Mergeable-summaries guarantee: estimates never overestimate and the
  // total error stays within F1 / (k+1) for the combined stream (Agarwal
  // et al.); the accumulated decrement bound is exposed directly.
  for (const auto& [item, f] : exact.counts()) {
    EXPECT_LE(sa.Estimate(item), f);
    EXPECT_GE(static_cast<double>(sa.Estimate(item)),
              static_cast<double>(f) -
                  static_cast<double>(sa.ErrorBound()) - 1.0);
  }
  EXPECT_LE(static_cast<double>(sa.ErrorBound()),
            2.0 * static_cast<double>(exact.F1()) / (k + 1));
}

TEST(MergeTest, MisraGriesMergeBoundedSize) {
  MisraGries sa(16), sb(16);
  for (item_t x = 0; x < 200; ++x) sa.Update(x, 10 + x);
  for (item_t x = 100; x < 300; ++x) sb.Update(x, 5 + x);
  sa.Merge(sb);
  EXPECT_LE(sa.SpaceBytes(), 16u * (sizeof(item_t) + sizeof(count_t)));
}

TEST(MergeTest, IndykWoodruffEqualsConcatenationEstimates) {
  TwoStreams t = MakeStreams();
  LevelSetParams params;
  params.eps_prime = 0.2;
  params.max_depth = 12;
  params.cs_depth = 5;
  params.cs_width = 1024;
  IndykWoodruffEstimator sa(params, 17), sb(params, 17), sboth(params, 17);
  for (item_t x : t.a) sa.Update(x);
  for (item_t x : t.b) sb.Update(x);
  for (item_t x : t.both) sboth.Update(x);
  sa.Merge(sb);
  EXPECT_EQ(sa.ConsumedLength(), sboth.ConsumedLength());
  // The underlying CountSketches merge exactly; candidate pools may differ
  // slightly (tracking is order-dependent), so compare the final collision
  // estimates within a modest tolerance.
  EXPECT_NEAR(sa.EstimateCollisions(2), sboth.EstimateCollisions(2),
              0.25 * sboth.EstimateCollisions(2) + 1.0);
}

TEST(MergeTest, DistributedMonitorsPipeline) {
  // End-to-end distributed scenario: two routers Bernoulli-sample their
  // local traffic at the same rate, sketch locally, and a collector merges
  // to answer about the union of the *original* streams.
  TwoStreams t = MakeStreams();
  const double p = 0.2;
  FrequencyTable exact = ExactStats(t.both);

  KmvSketch kmv_a(1024, 19), kmv_b(1024, 19);
  CountSketch cs_a(7, 2048, 21), cs_b(7, 2048, 21);
  BernoulliSampler sampler_a(p, 23), sampler_b(p, 29);
  count_t len_a = 0, len_b = 0;
  for (item_t x : t.a) {
    if (sampler_a.Keep()) {
      kmv_a.Update(x);
      cs_a.Update(x);
      ++len_a;
    }
  }
  for (item_t x : t.b) {
    if (sampler_b.Keep()) {
      kmv_b.Update(x);
      cs_b.Update(x);
      ++len_b;
    }
  }
  kmv_a.Merge(kmv_b);
  cs_a.Merge(cs_b);

  // F0 via Algorithm 2 scaling on the merged sketch.
  const double f0_est = kmv_a.Estimate() / std::sqrt(p);
  EXPECT_TRUE(WithinFactor(f0_est, static_cast<double>(exact.F0()),
                           4.0 / std::sqrt(p)));

  // F2 via Rusu–Dobra-style unbiasing of the merged CountSketch F2.
  const double f1_sampled = static_cast<double>(len_a + len_b);
  const double f2_est =
      (cs_a.EstimateF2() - (1.0 - p) * f1_sampled) / (p * p);
  EXPECT_TRUE(WithinFactor(f2_est, exact.Fk(2), 1.5));
}

}  // namespace
}  // namespace substream
