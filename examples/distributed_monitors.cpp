/// Distributed monitoring: several routers, one collector — now built on
/// the mergeable Monitor contract and the ShardedMonitor pipeline.
///
/// Stage 1 (distributed merge): each router Bernoulli-samples its local
/// traffic at rate p and runs a full Monitor (same config + seed across
/// the fleet, the Monitor::Merge precondition). The collector merges the
/// monitors and reports on the UNION of the original streams — without any
/// router shipping raw samples. This is the distributed-streams setting of
/// the related work the paper builds on [16, 36], composed with its
/// sampled-stream estimators.
///
/// Stage 2 (sharded collector): the same union of sampled traffic is fed
/// through a ShardedMonitor, the multi-core version of the same merge —
/// demonstrating that a single busy collector box can spread ingestion
/// across cores and still produce the same window report.
///
///   ./distributed_monitors [p] [routers] [shards]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/substream.h"

using namespace substream;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.1;
  const int routers = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t shards =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 4;
  const std::size_t packets_per_router = 1 << 19;
  // All monitors share config and sketch seeds (mandatory for mergeability)
  // but routers have independent sampling randomness.
  const std::uint64_t kSketchSeed = 42;
  MonitorConfig config;
  config.p = p;
  config.universe = 1 << 16;
  config.hh_alpha = 0.02;

  std::printf("distributed sampled-stream monitoring: %d routers, p=%.2f,"
              " %zu packets each\n\n", routers, p, packets_per_router);

  FrequencyTable exact_union;
  std::vector<Monitor> fleet;
  Stream sampled_union;  // replayed later through the sharded collector
  for (int r = 0; r < routers; ++r) {
    // Router r sees its own flow population with some overlap (shared flows
    // 1..20000 plus a router-private range).
    ZipfGenerator gen(20000 + 5000 * static_cast<item_t>(r), 1.1,
                      static_cast<std::uint64_t>(100 + r));
    Stream local = Materialize(gen, packets_per_router);
    exact_union.AddStream(local);
    BernoulliSampler sampler(p, static_cast<std::uint64_t>(500 + r));
    Stream sampled = sampler.Sample(local);
    sampled_union.insert(sampled_union.end(), sampled.begin(), sampled.end());

    fleet.emplace_back(config, kSketchSeed);
    fleet.back().UpdateBatch(sampled.data(), sampled.size());
    std::printf("  router %d: sampled %llu packets, local monitor %zu KB\n",
                r,
                static_cast<unsigned long long>(
                    fleet.back().Report().sampled_length),
                fleet.back().SpaceBytes() / 1024);
  }

  // Collector: one Merge call per router folds everything into monitor 0.
  Monitor& merged = fleet.front();
  for (int r = 1; r < routers; ++r) {
    merged.Merge(fleet[static_cast<std::size_t>(r)]);
  }
  const MonitorReport report = merged.Report();

  std::printf("\ncollector estimates (union of all routers):\n");
  std::printf("  distinct flows: %12.0f (exact %llu, factor bound %.1f)\n",
              report.distinct_items.value_or(0.0),
              static_cast<unsigned long long>(exact_union.F0()),
              4.0 / std::sqrt(p));
  std::printf("  self-join size: %12.4g (exact %.4g, rel.err %.1f%%)\n",
              report.second_moment.value_or(0.0), exact_union.Fk(2),
              100.0 * RelativeError(report.second_moment.value_or(0.0),
                                    exact_union.Fk(2)));
  std::printf("  scaled length:  %12.0f (exact %llu)\n", report.scaled_length,
              static_cast<unsigned long long>(exact_union.F1()));

  std::printf("  top flows (merged CountMin trackers, scaled 1/p):\n");
  int shown = 0;
  for (const HeavyHitter& hit : report.heavy_hitters.value_or(
           std::vector<HeavyHitter>{})) {
    if (++shown > 3) break;
    std::printf("    flow %llu: est %10.0f  exact %10llu\n",
                static_cast<unsigned long long>(hit.item),
                hit.estimated_frequency,
                static_cast<unsigned long long>(
                    exact_union.Frequency(hit.item)));
  }

  // Stage 2: the same union of sampled traffic through a multi-core
  // collector. Same config + seed => same kind of report, produced by K
  // worker threads behind per-shard ring buffers.
  ShardedMonitorOptions options;
  options.shards = shards;
  ShardedMonitor sharded(config, kSketchSeed, options);
  sharded.Ingest(sampled_union);
  const MonitorReport sharded_report = sharded.Report();
  std::printf("\nsharded collector (%zu shards, %llu packets ingested):\n",
              sharded.shards(),
              static_cast<unsigned long long>(sharded.ItemsIngested()));
  std::printf("  distinct flows: %12.0f   self-join size: %12.4g\n",
              sharded_report.distinct_items.value_or(0.0),
              sharded_report.second_moment.value_or(0.0));
  std::printf("  (vs merged-router estimates %.0f / %.4g)\n",
              report.distinct_items.value_or(0.0),
              report.second_moment.value_or(0.0));
  return 0;
}
