#ifndef SUBSTREAM_STREAM_SAMPLE_AND_HOLD_H_
#define SUBSTREAM_STREAM_SAMPLE_AND_HOLD_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/stream.h"
#include "util/random.h"

/// \file sample_and_hold.h
/// The sample-and-hold (SH) sampling model of Estan & Varghese [22],
/// discussed in the paper's related work as the main alternative to the
/// Bernoulli/NetFlow (NF) model: once any packet of a flow is sampled,
/// *all* subsequent packets of that flow are counted exactly.
///
/// SH trades memory (a table of held flows) for far better per-flow
/// accuracy on heavy flows: a flow of size f is held from its first
/// sampled packet onward, so the count misses only a Geometric(p) prefix.
/// The unbiased size estimate is count + 1/p - 1.
///
/// Provided so experiments can compare the NF model the paper analyzes
/// against SH on the same workloads (bench exp_nf_vs_sh).

namespace substream {

/// Streaming sample-and-hold monitor.
class SampleAndHoldMonitor {
 public:
  /// `p`: per-packet sampling probability; `capacity`: maximum number of
  /// held flows (0 = unlimited). When full, new flows are not admitted
  /// (the flow may be admitted by a later sampled packet after evictions;
  /// this implementation never evicts, matching the classic description).
  SampleAndHoldMonitor(double p, std::size_t capacity, std::uint64_t seed);

  /// Processes one packet of the *original* stream (SH decides sampling
  /// itself — unlike Bernoulli sampling, the model is stateful).
  void Update(item_t flow);

  /// Exact count of packets observed for `flow` since it was held
  /// (0 if never held).
  count_t HeldCount(item_t flow) const;

  /// Unbiased estimate of the flow's true size: count + 1/p - 1.
  double EstimateFlowSize(item_t flow) const;

  /// Held flows with estimated size >= threshold, sorted descending.
  std::vector<std::pair<item_t, double>> HeavyFlows(double threshold) const;

  /// Number of flows currently held (the memory cost of SH).
  std::size_t HeldFlows() const { return held_.size(); }

  count_t PacketsSeen() const { return packets_; }

  std::size_t SpaceBytes() const {
    return held_.size() * (sizeof(item_t) + sizeof(count_t));
  }

 private:
  double p_;
  std::size_t capacity_;
  Rng rng_;
  std::unordered_map<item_t, count_t> held_;
  count_t packets_ = 0;
};

}  // namespace substream

#endif  // SUBSTREAM_STREAM_SAMPLE_AND_HOLD_H_
