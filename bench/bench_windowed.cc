/// Windowed/decayed monitoring benchmark: rotation cost and merge-at-query
/// latency for the WindowedMonitor ring, plus the sharded pipeline's
/// stall-free Rotate() and CollectWindow() costs — the numbers behind the
/// README's rotation cost model.
///
///   ./bench_windowed [items_per_window] [windows] [repeats]
///
/// One JSON object per line on stdout; CI redirects the output into
/// BENCH_windowed.json, validates the rows and uploads the artifact so the
/// rotation/query cost trajectory is comparable across commits:
///   {"bench":"windowed","target":"windowed_monitor","mode":"rotate",...}

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/sharded_monitor.h"
#include "core/windowed_monitor.h"
#include "sketch/counter_kernels.h"
#include "stream/generators.h"
#include "util/simd.h"

using namespace substream;

namespace {

MonitorConfig BenchConfig() {
  MonitorConfig config;
  config.p = 0.1;
  config.universe = 1 << 16;
  config.hh_alpha = 0.02;
  config.max_f2_width = 1 << 12;
  return config;
}

void EmitRow(const char* target, const char* mode, std::size_t windows,
             std::size_t items, double ns_per_op, double ops_per_sec) {
  // isa/compiler/build tags make BENCH_windowed.json rows comparable
  // across hosts (rotation cost depends on the active kernel level through
  // the Reset/merge passes).
  std::printf(
      "{\"bench\":\"windowed\",\"target\":\"%s\",\"mode\":\"%s\","
      "\"windows\":%zu,\"items\":%zu,\"ns_per_op\":%.0f,"
      "\"ops_per_sec\":%.1f,%s}\n",
      target, mode, windows, items, ns_per_op, ops_per_sec,
      bench::RowTags(simd::Name(kernels::ActiveIsa())).c_str());
}

/// Times `op()` run `reps` times, returns best-of-`repeats` ns/op.
template <typename Op>
double BestNsPerOp(int repeats, std::size_t reps, Op op) {
  double best_ns = 0.0;
  for (int r = 0; r < repeats; ++r) {
    bench::Stopwatch timer;
    for (std::size_t i = 0; i < reps; ++i) op();
    const double ns = timer.Seconds() * 1e9 / static_cast<double>(reps);
    best_ns = (r == 0) ? ns : std::min(best_ns, ns);
  }
  return best_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t items_per_window =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : (1u << 16);
  const std::size_t windows =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;
  const int repeats = argc > 3 ? std::atoi(argv[3]) : 3;

  ZipfGenerator generator(1 << 16, 1.1, 7);
  const Stream window_items = Materialize(generator, items_per_window);
  const MonitorConfig config = BenchConfig();

  // --- WindowedMonitor: steady-state rotation (ring at capacity, so each
  // Rotate() is an eviction + Reset reuse) with a window of ingest between
  // rotations, measured separately from the ingest itself.
  {
    WindowedMonitorOptions options;
    options.windows = windows;
    WindowedMonitor ring(config, /*seed=*/3, options);
    // Warm to capacity so rotation measures the steady-state eviction path
    // (Reset-and-reuse of the oldest window's allocations).
    for (std::size_t w = 0; w < windows; ++w) {
      ring.UpdateBatch(window_items.data(), window_items.size());
      ring.Rotate();
    }
    // Time ONLY the Rotate() calls; the per-window ingest between them is
    // outside the stopwatch.
    double rotate_best_ns = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      double total_ns = 0.0;
      for (std::size_t w = 0; w < windows; ++w) {
        ring.UpdateBatch(window_items.data(), window_items.size());
        bench::Stopwatch timer;
        ring.Rotate();
        total_ns += timer.Seconds() * 1e9;
      }
      const double ns = total_ns / static_cast<double>(windows);
      rotate_best_ns = (rep == 0) ? ns : std::min(rotate_best_ns, ns);
    }
    EmitRow("windowed_monitor", "rotate", windows, items_per_window,
            rotate_best_ns, 1e9 / rotate_best_ns);

    // Merge-at-query latency over the last k windows, plus decayed mode.
    std::vector<std::size_t> ks{1, std::min<std::size_t>(windows, 4),
                                windows};
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
    for (std::size_t k : ks) {
      char mode[32];
      std::snprintf(mode, sizeof(mode), "report_k%zu", k);
      const double query_ns =
          BestNsPerOp(repeats, 3, [&] { (void)ring.Report(k); });
      EmitRow("windowed_monitor", mode, windows, items_per_window, query_ns,
              1e9 / query_ns);
    }
    WindowedMonitorOptions decay_options;
    decay_options.windows = windows;
    decay_options.decay = 0.8;
    WindowedMonitor decayed(config, /*seed=*/3, decay_options);
    for (std::size_t w = 0; w < windows; ++w) {
      decayed.UpdateBatch(window_items.data(), window_items.size());
      decayed.Rotate();
    }
    const double decay_ns =
        BestNsPerOp(repeats, 3, [&] { (void)decayed.ReportDecayed(); });
    EmitRow("windowed_monitor", "report_decayed", windows, items_per_window,
            decay_ns, 1e9 / decay_ns);
  }

  // --- ShardedMonitor: the stall-free rotation itself (flush + one marker
  // per shard) and the cost of collecting a rotated window.
  {
    ShardedMonitorOptions options;
    options.shards = 4;
    ShardedMonitor sharded(config, /*seed=*/3, options);
    double rotate_total_ns = 0.0;
    double collect_total_ns = 0.0;
    const std::size_t rounds = std::max<std::size_t>(windows, 4);
    for (std::size_t w = 0; w < rounds; ++w) {
      sharded.Ingest(window_items.data(), window_items.size());
      // Rotate() is the stall-free path: flush + one marker per shard.
      bench::Stopwatch rotate_timer;
      sharded.Rotate();
      rotate_total_ns += rotate_timer.Seconds() * 1e9;
      // Let the workers pass the boundary before timing the collection, so
      // collect_window measures the mailbox merge rather than how long the
      // workers take to chew the epoch's backlog.
      sharded.Drain();
      bench::Stopwatch collect_timer;
      auto window = sharded.CollectWindow(sharded.CurrentEpoch() - 1);
      collect_total_ns += collect_timer.Seconds() * 1e9;
      if (!window) return 1;
    }
    const double rotate_ns = rotate_total_ns / static_cast<double>(rounds);
    const double collect_ns = collect_total_ns / static_cast<double>(rounds);
    EmitRow("sharded_monitor", "rotate", rounds, items_per_window, rotate_ns,
            1e9 / rotate_ns);
    EmitRow("sharded_monitor", "collect_window", rounds, items_per_window,
            collect_ns, 1e9 / collect_ns);
  }

  return 0;
}
