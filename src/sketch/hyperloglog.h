#ifndef SUBSTREAM_SKETCH_HYPERLOGLOG_H_
#define SUBSTREAM_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

/// \file hyperloglog.h
/// HyperLogLog distinct counter (Flajolet et al.) — the second F0(L)
/// backend for Algorithm 2, with constant-byte registers instead of KMV's
/// 8-byte values. Standard bias correction and linear-counting small-range
/// correction included.

namespace substream {

/// HLL with 2^precision registers; relative error ~ 1.04 / sqrt(2^precision).
class HyperLogLog {
 public:
  HyperLogLog(int precision, std::uint64_t seed);

  void Update(item_t item);

  double Estimate() const;

  /// Merges another sketch built with the same precision and seed.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

  std::size_t SpaceBytes() const {
    return registers_.size() * sizeof(std::uint8_t) + sizeof(*this);
  }

 private:
  int precision_;
  std::uint64_t mask_;
  TabulationHash hash_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace substream

#endif  // SUBSTREAM_SKETCH_HYPERLOGLOG_H_
