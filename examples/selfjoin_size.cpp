/// Self-join size estimation from a sampled update stream.
///
/// The size of the self-join R ⋈ R on attribute A equals F2 of the stream
/// of A-values inserted into R — the classic motivation for F2 sketches in
/// query optimizers (and the setting of Rusu & Dobra [34], the baseline the
/// paper improves on). Here the optimizer sees only a p-sample of the
/// insert stream, and we compare three ways to estimate |R ⋈ R|:
///
///   1. the paper's collision method (Algorithm 1),
///   2. Rusu–Dobra scaling (AMS on L, analytically unbiased),
///   3. naive normalization F2(L)/p^2 (what you'd do if you forgot the
///      cross terms — the paper's intro explains why this is wrong).
///
///   ./selfjoin_size [p]

#include <cstdio>
#include <cstdlib>

#include "core/substream.h"

using namespace substream;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::size_t inserts = 1 << 20;

  // Relation R: a low-cardinality attribute (e.g. `city`), heavily
  // duplicated — the regime where the naive estimator is most wrong.
  const item_t attribute_cardinality = 4096;
  UniformGenerator insert_stream(attribute_cardinality, 11);
  Stream original = Materialize(insert_stream, inserts);
  FrequencyTable exact = ExactStats(original);
  const double truth = exact.Fk(2);

  std::printf("self-join size estimation from a %.1f%% sample of %zu"
              " inserts\n", 100.0 * p, inserts);
  std::printf("attribute cardinality %llu, exact |R join R| = %.4g\n\n",
              static_cast<unsigned long long>(attribute_cardinality), truth);

  FkParams collision_params;
  collision_params.k = 2;
  collision_params.p = p;
  collision_params.universe = attribute_cardinality;
  collision_params.backend = CollisionBackend::kSketch;
  collision_params.epsilon = 0.2;
  collision_params.max_width = 1 << 13;
  FkEstimator collision(collision_params, 21);

  RusuDobraF2Estimator rusu_dobra(p, 7, 400, 22);
  NaiveScaledFkEstimator naive(p);

  BernoulliSampler sampler(p, 23);
  std::size_t sampled = 0;
  for (item_t a : original) {
    if (!sampler.Keep()) continue;
    ++sampled;
    collision.Update(a);
    rusu_dobra.Update(a);
    naive.Update(a);
  }
  std::printf("sampled %zu of %zu inserts\n\n", sampled, inserts);

  std::printf("%-34s %15s %9s %12s\n", "method", "estimate", "rel.err",
              "space(KB)");
  auto row = [&](const char* name, double est, std::size_t bytes) {
    std::printf("%-34s %15.4g %8.1f%% %12zu\n", name, est,
                100.0 * RelativeError(est, truth), bytes / 1024);
  };
  row("collision method (Algorithm 1)", collision.Estimate(),
      collision.SpaceBytes());
  row("Rusu-Dobra scaling [34]", rusu_dobra.Estimate(),
      rusu_dobra.SpaceBytes());
  row("naive F2(L)/p^2", naive.Estimate(2), naive.SpaceBytes());

  const double expected_bias = (1.0 - p) * static_cast<double>(inserts) / p;
  std::printf("\nnaive bias explained: E[F2(L)] = p^2 F2 + p(1-p) F1, so\n"
              "naive overestimates by ~(1-p)F1/p = %.4g — %.0f%% of the\n"
              "true answer at this p. The corrected methods remove it.\n",
              expected_bias, 100.0 * expected_bias / truth);
  return 0;
}
