#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace substream {
namespace obs {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// %.17g round-trips doubles exactly through parse-back; JSON forbids bare
// inf/nan so clamp those to 0.
void AppendF64(std::string& out, double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// Highest bucket index with a nonzero count (so expositions stop at the
// observed range instead of emitting 44 bounds per histogram); -1 if empty.
int HighestNonZeroBucket(const HistogramSample& h) {
  for (int i = static_cast<int>(kHistogramBuckets) - 1; i >= 0; --i) {
    if (h.buckets[static_cast<unsigned>(i)] != 0) return i;
  }
  return -1;
}

double RatePerSec(std::uint64_t cur, std::uint64_t prev_value,
                  std::uint64_t dt_ns) {
  if (dt_ns == 0 || cur < prev_value) return 0.0;
  return static_cast<double>(cur - prev_value) * 1e9 /
         static_cast<double>(dt_ns);
}

template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         const std::string& name) {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const CounterSample& c : snap.counters) {
    if (!c.help.empty()) {
      out += "# HELP " + c.name + " " + c.help + "\n";
    }
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " ";
    AppendU64(out, c.value);
    out += "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    if (!g.help.empty()) {
      out += "# HELP " + g.name + " " + g.help + "\n";
    }
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendI64(out, g.value);
    out += "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    if (!h.help.empty()) {
      out += "# HELP " + h.name + " " + h.help + "\n";
    }
    out += "# TYPE " + h.name + " histogram\n";
    const int top = HighestNonZeroBucket(h);
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= top && i + 1 < static_cast<int>(kHistogramBuckets);
         ++i) {
      cumulative += h.buckets[static_cast<unsigned>(i)];
      out += h.name + "_bucket{le=\"";
      AppendU64(out, BucketUpperBoundNs(static_cast<unsigned>(i)));
      out += "\"} ";
      AppendU64(out, cumulative);
      out += "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, h.count);
    out += "\n";
    out += h.name + "_sum ";
    AppendU64(out, h.sum_ns);
    out += "\n";
    out += h.name + "_count ";
    AppendU64(out, h.count);
    out += "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snap, const MetricsSnapshot* prev) {
  const bool with_rates =
      prev != nullptr && snap.wall_ns > prev->wall_ns;
  const std::uint64_t dt_ns = with_rates ? snap.wall_ns - prev->wall_ns : 0;

  std::string out;
  out.reserve(4096);
  out += "{\"wall_ns\":";
  AppendU64(out, snap.wall_ns);
  if (with_rates) {
    out += ",\"interval_ns\":";
    AppendU64(out, dt_ns);
  }
  out += ",\"counters\":[";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, c.name);
    out += "\",\"value\":";
    AppendU64(out, c.value);
    if (with_rates) {
      const CounterSample* p = FindByName(prev->counters, c.name);
      out += ",\"rate_per_sec\":";
      AppendF64(out, RatePerSec(c.value, p ? p->value : 0, dt_ns));
    }
    out += "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, g.name);
    out += "\",\"value\":";
    AppendI64(out, g.value);
    out += "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, h.name);
    out += "\",\"count\":";
    AppendU64(out, h.count);
    out += ",\"sum_ns\":";
    AppendU64(out, h.sum_ns);
    if (h.count > 0) {
      out += ",\"mean_ns\":";
      AppendF64(out, static_cast<double>(h.sum_ns) /
                         static_cast<double>(h.count));
    }
    if (with_rates) {
      const HistogramSample* p = FindByName(prev->histograms, h.name);
      out += ",\"rate_per_sec\":";
      AppendF64(out, RatePerSec(h.count, p ? p->count : 0, dt_ns));
    }
    // Sparse buckets: [log2_index, count] pairs, nonzero only.
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "[";
      AppendU64(out, i);
      out += ",";
      AppendU64(out, h.buckets[i]);
      out += "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ToJson(const HealthReport& report) {
  std::string out;
  out.reserve(1024);
  out += "{\"sampled_length\":";
  AppendU64(out, report.sampled_length);
  out += ",\"sampling_p\":";
  AppendF64(out, report.sampling_p);
  out += ",\"summaries\":[";
  bool first = true;
  for (const SummaryHealth& s : report.summaries) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, s.name);
    out += "\",\"kind\":\"";
    AppendEscaped(out, s.kind);
    out += "\",\"depth\":";
    AppendU64(out, s.depth);
    out += ",\"width\":";
    AppendU64(out, s.width);
    out += ",\"cells\":";
    AppendU64(out, s.cells);
    out += ",\"nonzero_cells\":";
    AppendU64(out, s.nonzero_cells);
    out += ",\"spilled_cells\":";
    AppendU64(out, s.spilled_cells);
    out += ",\"saturated_cells\":";
    AppendU64(out, s.saturated_cells);
    out += ",\"fill_ratio\":";
    AppendF64(out, s.fill_ratio);
    out += ",\"spill_fraction\":";
    AppendF64(out, s.spill_fraction);
    out += ",\"saturation_fraction\":";
    AppendF64(out, s.saturation_fraction);
    out += ",\"epsilon\":";
    AppendF64(out, s.epsilon);
    out += ",\"delta\":";
    AppendF64(out, s.delta);
    out += ",\"space_bytes\":";
    AppendU64(out, s.space_bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace substream
